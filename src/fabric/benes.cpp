#include "fabric/benes.hpp"

#include <thread>

#include "util/contracts.hpp"

namespace scmp::fabric {

bool is_power_of_two(int v) { return v >= 1 && (v & (v - 1)) == 0; }

BenesNetwork::BenesNetwork(int n) : n_(n) {
  SCMP_EXPECTS(n >= 2 && is_power_of_two(n));
  in_sw_.assign(static_cast<std::size_t>(n / 2), 0);
  out_sw_.assign(static_cast<std::size_t>(n / 2), 0);
  if (n > 2) {
    upper_ = std::make_unique<BenesNetwork>(n / 2);
    lower_ = std::make_unique<BenesNetwork>(n / 2);
  }
}

int BenesNetwork::stage_count() const {
  int stages = 1, m = n_;
  while (m > 2) {
    stages += 2;
    m /= 2;
  }
  return stages;
}

int BenesNetwork::switch_count() const { return n_ / 2 * stage_count(); }

void BenesNetwork::route(const std::vector<int>& perm) {
  route_impl(perm, /*parallel_depth=*/0);
}

void BenesNetwork::route_parallel(const std::vector<int>& perm,
                                  int parallel_depth) {
  SCMP_EXPECTS(parallel_depth >= 0);
  route_impl(perm, parallel_depth);
}

void BenesNetwork::route_impl(const std::vector<int>& perm,
                              int parallel_depth) {
  SCMP_EXPECTS(static_cast<int>(perm.size()) == n_);
  if (n_ == 2) {
    SCMP_EXPECTS((perm[0] ^ perm[1]) == 1);
    in_sw_[0] = static_cast<std::int8_t>(perm[0] == 1);
    return;
  }

  std::vector<int> inv(static_cast<std::size_t>(n_), -1);
  for (int x = 0; x < n_; ++x) {
    SCMP_EXPECTS(perm[static_cast<std::size_t>(x)] >= 0 &&
                 perm[static_cast<std::size_t>(x)] < n_);
    SCMP_EXPECTS(inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(x)])] == -1);
    inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(x)])] = x;
  }

  // Looping algorithm: -1 marks unresolved switches.
  std::vector<int> in_set(static_cast<std::size_t>(n_ / 2), -1);
  std::vector<int> out_set(static_cast<std::size_t>(n_ / 2), -1);
  for (int s = 0; s < n_ / 2; ++s) {
    if (in_set[static_cast<std::size_t>(s)] != -1) continue;
    in_set[static_cast<std::size_t>(s)] = 0;  // free choice starts the loop
    const int start = 2 * s;
    int x = start;
    while (true) {
      // Subnet the input x is routed to (0 = upper, 1 = lower).
      const int sx = (x & 1) ^ in_set[static_cast<std::size_t>(x >> 1)];
      const int y = perm[static_cast<std::size_t>(x)];
      const int need_out = (y & 1) ^ sx;
      int& out_entry = out_set[static_cast<std::size_t>(y >> 1)];
      if (out_entry == -1) {
        out_entry = need_out;
      } else {
        SCMP_ASSERT(out_entry == need_out);
      }
      // The partner output of y must come from the other subnet, which
      // constrains the switch of its input.
      const int y2 = y ^ 1;
      const int sy2 = (y2 & 1) ^ out_set[static_cast<std::size_t>(y2 >> 1)];
      const int x2 = inv[static_cast<std::size_t>(y2)];
      const int need_in = (x2 & 1) ^ sy2;
      int& in_entry = in_set[static_cast<std::size_t>(x2 >> 1)];
      if (in_entry == -1) {
        in_entry = need_in;
      } else {
        SCMP_ASSERT(in_entry == need_in);
      }
      // Continue the loop with the partner input.
      x = x2 ^ 1;
      if (x == start) break;
    }
  }

  for (std::size_t i = 0; i < in_set.size(); ++i) {
    in_sw_[i] = static_cast<std::int8_t>(in_set[i] == -1 ? 0 : in_set[i]);
    out_sw_[i] = static_cast<std::int8_t>(out_set[i] == -1 ? 0 : out_set[i]);
  }

  // Build and route the two centre sub-permutations.
  std::vector<int> up(static_cast<std::size_t>(n_ / 2), -1);
  std::vector<int> low(static_cast<std::size_t>(n_ / 2), -1);
  for (int x = 0; x < n_; ++x) {
    const int sx = (x & 1) ^ in_sw_[static_cast<std::size_t>(x >> 1)];
    const int y = perm[static_cast<std::size_t>(x)];
    if (sx == 0) {
      up[static_cast<std::size_t>(x >> 1)] = y >> 1;
    } else {
      low[static_cast<std::size_t>(x >> 1)] = y >> 1;
    }
  }
  if (parallel_depth > 0 && n_ >= 16) {
    std::thread upper_worker(
        [this, &up, parallel_depth] { upper_->route_impl(up, parallel_depth - 1); });
    lower_->route_impl(low, parallel_depth - 1);
    upper_worker.join();
  } else {
    upper_->route_impl(up, 0);
    lower_->route_impl(low, 0);
  }
}

int BenesNetwork::forward(int input) const {
  SCMP_EXPECTS(input >= 0 && input < n_);
  if (n_ == 2) return in_sw_[0] != 0 ? (input ^ 1) : input;

  const int sw = input >> 1;
  const int subnet = (input & 1) ^ in_sw_[static_cast<std::size_t>(sw)];
  const int sub_out =
      (subnet == 0 ? upper_ : lower_)->forward(sw);
  const int ocross = out_sw_[static_cast<std::size_t>(sub_out)];
  // Output switch j receives the upper subnet on its top leg and the lower
  // subnet on its bottom leg; a crossed switch swaps them.
  const int leg = subnet ^ ocross;
  return 2 * sub_out + leg;
}

}  // namespace scmp::fabric
