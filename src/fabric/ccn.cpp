#include "fabric/ccn.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace scmp::fabric {

namespace {

int ceil_log2(int v) {
  int depth = 0;
  int span = 1;
  while (span < v) {
    span *= 2;
    ++depth;
  }
  return depth;
}

}  // namespace

ConnectionComponentNetwork::ConnectionComponentNetwork(int lines)
    : lines_(lines) {
  SCMP_EXPECTS(lines >= 1);
  leader_.resize(static_cast<std::size_t>(lines));
  depth_.assign(static_cast<std::size_t>(lines), 0);
  for (int i = 0; i < lines; ++i) leader_[static_cast<std::size_t>(i)] = i;
}

void ConnectionComponentNetwork::configure(const std::vector<Block>& blocks) {
  for (int i = 0; i < lines_; ++i) {
    leader_[static_cast<std::size_t>(i)] = i;
    depth_[static_cast<std::size_t>(i)] = 0;
  }
  blocks_ = blocks;
  std::vector<char> used(static_cast<std::size_t>(lines_), 0);
  for (const Block& b : blocks) {
    SCMP_EXPECTS(b.length >= 1);
    SCMP_EXPECTS(b.start >= 0 && b.start + b.length <= lines_);
    const int tree_depth = ceil_log2(b.length);
    for (int i = 0; i < b.length; ++i) {
      const auto line = static_cast<std::size_t>(b.start + i);
      SCMP_EXPECTS(!used[line]);  // blocks must be disjoint
      used[line] = 1;
      leader_[line] = b.start;
      depth_[line] = tree_depth;
    }
  }
}

int ConnectionComponentNetwork::leader_of(int line) const {
  SCMP_EXPECTS(line >= 0 && line < lines_);
  return leader_[static_cast<std::size_t>(line)];
}

int ConnectionComponentNetwork::merge_depth(int line) const {
  SCMP_EXPECTS(line >= 0 && line < lines_);
  return depth_[static_cast<std::size_t>(line)];
}

bool ConnectionComponentNetwork::verify_isolation() const {
  for (const Block& b : blocks_) {
    for (int i = 0; i < b.length; ++i) {
      if (leader_[static_cast<std::size_t>(b.start + i)] != b.start)
        return false;
    }
  }
  // Lines outside every block must pass through untouched.
  std::vector<char> in_block(static_cast<std::size_t>(lines_), 0);
  for (const Block& b : blocks_)
    for (int i = 0; i < b.length; ++i)
      in_block[static_cast<std::size_t>(b.start + i)] = 1;
  for (int line = 0; line < lines_; ++line) {
    if (!in_block[static_cast<std::size_t>(line)] &&
        leader_[static_cast<std::size_t>(line)] != line)
      return false;
  }
  return true;
}

}  // namespace scmp::fabric
