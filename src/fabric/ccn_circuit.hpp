// Gate-level realisation of the connection component network: the abstract
// CCN (ccn.hpp) says *what* merges; this circuit says *how*, with explicit
// 2:1 merge elements arranged in log-depth stages — the reversed binary tree
// per connection component that the paper's conference-network references
// ([11], [12]) build in hardware.
//
// For every configured block, stage s (s = 0, 1, ...) contains an element
// merging line (start + k*2^(s+1) + 2^s) into line (start + k*2^(s+1)) when
// both lie inside the block — a binary-tree reduction that leaves the whole
// block's signal on the block leader after ceil(log2(len)) stages.
#pragma once

#include <vector>

#include "fabric/ccn.hpp"

namespace scmp::fabric {

/// One 2:1 combiner: at `stage`, the signal on `from_line` merges into
/// `into_line`.
struct MergeElement {
  int stage = 0;
  int from_line = 0;
  int into_line = 0;
};

class CcnCircuit {
 public:
  explicit CcnCircuit(int lines);

  int lines() const { return lines_; }

  /// Builds the merge elements for disjoint blocks (same contract as the
  /// abstract CCN).
  void configure(const std::vector<Block>& blocks);

  const std::vector<MergeElement>& elements() const { return elements_; }
  int element_count() const { return static_cast<int>(elements_.size()); }
  /// Stages the deepest block needs.
  int stage_count() const { return stages_; }

  /// Propagates signals through the circuit: `inputs[l]` is the signal id on
  /// line l (-1 = idle). Returns, per output line, the ascending list of
  /// input *lines* whose signals ended up there.
  std::vector<std::vector<int>> propagate(
      const std::vector<int>& inputs) const;

  /// The output line a signal entering on `line` leaves on.
  int leader_of(int line) const;

 private:
  int lines_;
  int stages_ = 0;
  std::vector<MergeElement> elements_;
};

}  // namespace scmp::fabric
