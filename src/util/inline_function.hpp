// Move-only type-erased callable with inline (small-buffer) storage.
//
// The discrete-event engine stores one callable per scheduled event; with
// std::function every capture beyond two words costs a heap allocation per
// event, which dominates the simulator's steady-state cost long before
// protocol logic does. InlineFunction fits a capture of up to `Capacity`
// bytes directly inside the object — an event node owns its closure, so
// scheduling allocates nothing. Oversized or potentially-throwing captures
// still work: they degrade to exactly one boxed allocation held by a
// std::unique_ptr constructed in the same inline buffer.
//
// Unlike std::function the stored callable does not need to be copyable —
// closures may own moved-in Packets (whose buffers return to a pool) or
// other move-only resources.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

#include "util/contracts.hpp"

namespace scmp::util {

template <typename Signature, std::size_t Capacity = 64>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
  template <typename D>
  static constexpr bool kFitsInline =
      sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

 public:
  InlineFunction() noexcept = default;
  // NOLINTNEXTLINE(google-explicit-constructor): matches std::function
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(hicpp-explicit-conversions)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor,bugprone-forwarding-reference-overload)
  InlineFunction(F&& f) {
    if constexpr (kFitsInline<D>) {
      std::construct_at(target<D>(), std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      std::construct_at(target<std::unique_ptr<D>>(),
                        std::make_unique<D>(std::forward<F>(f)));
      ops_ = &kBoxedOps<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invokes the stored callable. Requires a non-empty function.
  R operator()(Args... args) {
    SCMP_EXPECTS(ops_ != nullptr);
    return ops_->invoke(storage(), std::forward<Args>(args)...);
  }

  /// Destroys the stored callable (if any), leaving the function empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

  /// Whether a callable of type F would live inside the buffer (no heap).
  template <typename F>
  static constexpr bool stores_inline() {
    return kFitsInline<std::decay_t<F>>;
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    /// Move-constructs dst from src's value and destroys src's value.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* s, Args&&... args) -> R {
        return std::invoke(*static_cast<D*>(s), std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        D* from = static_cast<D*>(src);
        std::construct_at(static_cast<D*>(dst), std::move(*from));
        std::destroy_at(from);
      },
      [](void* s) noexcept { std::destroy_at(static_cast<D*>(s)); }};

  template <typename D>
  static constexpr Ops kBoxedOps{
      [](void* s, Args&&... args) -> R {
        return std::invoke(**static_cast<std::unique_ptr<D>*>(s),
                           std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        auto* from = static_cast<std::unique_ptr<D>*>(src);
        std::construct_at(static_cast<std::unique_ptr<D>*>(dst),
                          std::move(*from));
        std::destroy_at(from);
      },
      [](void* s) noexcept {
        std::destroy_at(static_cast<std::unique_ptr<D>*>(s));
      }};

  void* storage() noexcept { return static_cast<void*>(&buf_); }

  template <typename T>
  T* target() noexcept {
    static_assert(sizeof(T) <= Capacity && alignof(T) <= alignof(std::max_align_t));
    return static_cast<T*>(storage());
  }

  void move_from(InlineFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage(), other.storage());
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace scmp::util
