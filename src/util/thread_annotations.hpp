// Clang thread-safety analysis annotations (-Wthread-safety), portable
// across compilers: on clang the macros expand to the `capability` attribute
// family so lock discipline is machine-checked at compile time; on gcc (and
// anything else) they expand to nothing and the code is unchanged.
//
// Usage policy (docs/development.md, "Thread-safety annotations &
// determinism rules"):
//   * Every mutex that guards cross-thread shared state is a util::Mutex
//     (the annotated wrapper below), never a raw std::mutex — std::mutex
//     carries no capability attribute, so clang cannot analyse it.
//   * Every member a mutex protects is declared GUARDED_BY(mu_)
//     (PT_GUARDED_BY for the pointee of a guarded pointer).
//   * Functions that must be called with a lock held are REQUIRES(mu_);
//     functions that must NOT hold it (they acquire it themselves, or they
//     block) are EXCLUDES(mu_).
//   * Lock-free atomics need no annotation: they synchronise themselves.
//     Document the chosen memory order at the declaration instead (see
//     util/log.cpp, obs/metrics.hpp).
//
// The `tsa` CMake preset (clang + -Werror=thread-safety) turns any
// violation — touching a GUARDED_BY member without the lock, double
// acquisition, a forgotten release path — into a build error; CI runs it on
// every push.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SCMP_TSA(x) __attribute__((x))
#endif
#endif
#ifndef SCMP_TSA
#define SCMP_TSA(x)  // not clang: annotations compile away
#endif

#define CAPABILITY(x) SCMP_TSA(capability(x))
#define SCOPED_CAPABILITY SCMP_TSA(scoped_lockable)
#define GUARDED_BY(x) SCMP_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) SCMP_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) SCMP_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) SCMP_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) SCMP_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) SCMP_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) SCMP_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) SCMP_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) SCMP_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) SCMP_TSA(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) SCMP_TSA(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) SCMP_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) SCMP_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) SCMP_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS SCMP_TSA(no_thread_safety_analysis)

namespace scmp::util {

/// std::mutex wrapped as an analysable capability. Same cost, same
/// semantics; the attribute is the only difference.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock for util::Mutex — std::lock_guard with the scoped-capability
/// attribute, so clang tracks the critical section's extent.
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace scmp::util
