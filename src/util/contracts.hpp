// Lightweight Expects/Ensures-style runtime contracts (C++ Core Guidelines I.6/I.8).
//
// Contract violations indicate programming errors, not recoverable conditions,
// so they abort with a diagnostic rather than throw.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace scmp {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace scmp

#define SCMP_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                           \
          : ::scmp::contract_failure("Precondition", #cond, __FILE__, __LINE__))

#define SCMP_ENSURES(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                           \
          : ::scmp::contract_failure("Postcondition", #cond, __FILE__, __LINE__))

#define SCMP_ASSERT(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::scmp::contract_failure("Invariant", #cond, __FILE__, __LINE__))
