// Console table / CSV emission used by the figure-reproduction harnesses.
//
// Each bench prints one aligned table per paper figure panel, and can
// optionally mirror the same rows to a CSV file for external plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace scmp {

/// Column-aligned plain-text table with an optional CSV mirror.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; it must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision (helper for cells).
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scmp
