#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/contracts.hpp"

namespace scmp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SCMP_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  SCMP_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule += std::string(widths[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace scmp
