// Minimal leveled logger. Off by default so simulations stay quiet and fast;
// tests and examples raise the level to trace protocol behaviour.
#pragma once

#include <sstream>
#include <string>
#include <utility>

namespace scmp {

enum class LogLevel { kOff = 0, kError, kInfo, kDebug, kTrace };

/// Process-wide log level. Reads and writes are atomic (relaxed), so worker
/// threads (compute pool, fabric routing) may log concurrently with a level
/// change without a data race.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Writes one line to stderr if `level` is enabled.
void log_line(LogLevel level, const std::string& msg);

namespace detail {

template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream ss;
  ((void)(ss << std::forward<Args>(args)), ...);
  return ss.str();
}

}  // namespace detail

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() >= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() >= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() >= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_trace(Args&&... args) {
  if (log_level() >= LogLevel::kTrace)
    log_line(LogLevel::kTrace, detail::concat(std::forward<Args>(args)...));
}

}  // namespace scmp
