#include "util/rng.hpp"

#include <cmath>

namespace scmp {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one invalid xoshiro state; splitmix64 cannot emit
  // four zero words in a row for any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SCMP_EXPECTS(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling (Lemire-style threshold) for an unbiased draw.
  const std::uint64_t threshold = (0 - range) % range;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
  }
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  SCMP_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) { return uniform01() < p; }

std::vector<int> Rng::sample_without_replacement(int n, int k) {
  SCMP_EXPECTS(0 <= k && k <= n);
  std::vector<int> all(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
  shuffle(all);
  all.resize(static_cast<std::size_t>(k));
  return all;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace scmp
