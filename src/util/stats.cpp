#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace scmp {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

Summary summarize(const RunningStats& s) {
  Summary out;
  out.count = s.count();
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.min = s.count() > 0 ? s.min() : 0.0;
  out.max = s.count() > 0 ? s.max() : 0.0;
  out.ci95 = s.ci95_halfwidth();
  return out;
}

Summary summarize(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return summarize(s);
}

double median(std::vector<double> xs) {
  SCMP_EXPECTS(!xs.empty());
  const auto mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(
      xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace scmp
