#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace scmp {

int LogBuckets::index(double x) {
  // The comparison is written so NaN, zero and negatives all land in the
  // underflow bucket without a separate test.
  if (!(x >= std::ldexp(1.0, kMinExp))) return 0;
  if (x >= std::ldexp(1.0, kMaxExp)) return kCount - 1;
  const double e = (std::log2(x) - kMinExp) * kSubBuckets;
  return std::clamp(1 + static_cast<int>(e), 1, kCount - 2);
}

double LogBuckets::lower(int i) {
  SCMP_EXPECTS(i >= 0 && i < kCount);
  if (i == 0) return 0.0;
  return std::exp2(kMinExp +
                   static_cast<double>(i - 1) / kSubBuckets);
}

double LogBuckets::representative(int i) {
  SCMP_EXPECTS(i >= 0 && i < kCount);
  if (i == 0) return 0.0;
  if (i == kCount - 1) return std::ldexp(1.0, kMaxExp);
  return std::sqrt(lower(i) * lower(i + 1));
}

double quantile_from_counts(const std::vector<std::uint64_t>& counts,
                            double q) {
  SCMP_EXPECTS(q >= 0.0 && q <= 1.0);
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  // Nearest-rank: the smallest value with cumulative frequency >= q.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) return LogBuckets::representative(static_cast<int>(i));
  }
  return LogBuckets::representative(static_cast<int>(counts.size()) - 1);
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  if (buckets_.empty()) buckets_.assign(LogBuckets::kCount, 0);
  ++buckets_[static_cast<std::size_t>(LogBuckets::index(x))];
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::quantile(double q) const {
  SCMP_EXPECTS(q >= 0.0 && q <= 1.0);
  if (n_ == 0) return 0.0;
  // Clamping to the exact extremes makes single-sample stats exact and
  // tightens the tails beyond the bucket resolution.
  return std::clamp(quantile_from_counts(buckets_, q), min_, max_);
}

Summary summarize(const RunningStats& s) {
  Summary out;
  out.count = s.count();
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.min = s.count() > 0 ? s.min() : 0.0;
  out.max = s.count() > 0 ? s.max() : 0.0;
  out.ci95 = s.ci95_halfwidth();
  out.p50 = s.p50();
  out.p95 = s.p95();
  out.p99 = s.p99();
  return out;
}

Summary summarize(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return summarize(s);
}

double median(std::vector<double> xs) {
  SCMP_EXPECTS(!xs.empty());
  const auto mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(
      xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace scmp
