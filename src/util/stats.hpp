// Small statistics helpers for the experiment harnesses: single-pass running
// moments (Welford) plus a summary type carrying a normal-approximation 95%
// confidence interval, which the benches print next to every series point.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace scmp {

/// Single-pass mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Immutable snapshot of a RunningStats, convenient for tables.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double ci95 = 0.0;
};

Summary summarize(const RunningStats& s);
Summary summarize(const std::vector<double>& xs);

/// Exact median (copies and sorts; fine at experiment sizes).
double median(std::vector<double> xs);

}  // namespace scmp
