// Small statistics helpers for the experiment harnesses: single-pass running
// moments (Welford) plus a fixed-layout logarithmic histogram giving
// approximate p50/p95/p99, and a summary type carrying a normal-approximation
// 95% confidence interval — the benches print mean/ci95/quantiles next to
// every series point and export them to BENCH_*.json.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace scmp {

/// Fixed logarithmic bucket layout shared by RunningStats quantiles and the
/// observability histograms (src/obs): kSubBuckets buckets per power of two
/// covering [2^kMinExp, 2^kMaxExp) — from ~9e-13 to ~1.7e7, which spans
/// nanosecond wall times, simulated seconds, and packet/byte counts — plus
/// an underflow bucket (zero, negative, NaN) and an overflow bucket. The
/// relative quantile error is bounded by 2^(1/kSubBuckets) - 1 (~4.4%).
struct LogBuckets {
  static constexpr int kSubBuckets = 16;
  static constexpr int kMinExp = -40;
  static constexpr int kMaxExp = 24;
  static constexpr int kCount = (kMaxExp - kMinExp) * kSubBuckets + 2;

  /// Bucket index of a sample (0 = underflow, kCount-1 = overflow).
  static int index(double x);
  /// Inclusive lower value bound of bucket `i` (0 for the underflow bucket).
  static double lower(int i);
  /// Value reported for a quantile landing in bucket `i`: the geometric
  /// midpoint of its bounds (0 for underflow, 2^kMaxExp for overflow).
  static double representative(int i);
};

/// Quantile (0 <= q <= 1) from per-bucket counts in LogBuckets layout.
/// Returns 0 when the counts are all zero.
double quantile_from_counts(const std::vector<std::uint64_t>& counts,
                            double q);

/// Single-pass mean/variance accumulator (Welford's algorithm) with an
/// attached LogBuckets histogram for approximate quantiles.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const;

  /// Approximate quantile (histogram-backed; ~4.4% relative error, clamped
  /// to the exact observed [min, max]). Returns 0 before the first add().
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  /// LogBuckets counts; allocated on the first add().
  std::vector<std::uint64_t> buckets_;
};

/// Immutable snapshot of a RunningStats, convenient for tables.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double ci95 = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

Summary summarize(const RunningStats& s);
Summary summarize(const std::vector<double>& xs);

/// Exact median (copies and sorts; fine at experiment sizes).
double median(std::vector<double> xs);

}  // namespace scmp
