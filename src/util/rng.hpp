// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every experiment in the reproduction is seeded explicitly; the generator is
// xoshiro256** (public domain, Blackman & Vigna) seeded via splitmix64 so that
// results are identical across platforms and standard-library versions
// (std::mt19937 distributions are not portable across implementations).
#pragma once

#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace scmp {

/// Stateless splitmix64 step; used to expand a single seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** deterministic PRNG with portable uniform distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct values sampled from [0, n) in random order. Requires k <= n.
  std::vector<int> sample_without_replacement(int n, int k);

  /// Derive an independent generator (for per-trial streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace scmp
