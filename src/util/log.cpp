#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/contracts.hpp"

namespace scmp {

namespace {
// Relaxed ordering suffices: the level is a filtering hint, not a
// synchronisation point — a logging thread may observe a level change
// slightly late, but never tears or races. Per the thread-safety annotation
// policy (util/thread_annotations.hpp), a lock-free atomic is
// self-synchronising and carries no GUARDED_BY; the memory order is the
// documentation. The only other shared state in this module is stderr,
// which POSIX stdio locks per fprintf call (see log_line).
std::atomic<LogLevel> g_level{LogLevel::kOff};
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  SCMP_EXPECTS(level >= LogLevel::kOff && level <= LogLevel::kTrace);
  g_level.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& msg) {
  static constexpr const char* kNames[] = {"off", "error", "info", "debug",
                                           "trace"};
  SCMP_EXPECTS(level >= LogLevel::kOff && level <= LogLevel::kTrace);
  // A single fprintf call per line: POSIX stdio streams are locked per call,
  // so concurrent log lines interleave whole, never mid-line.
  std::fprintf(stderr, "[%s] %s\n", kNames[static_cast<std::size_t>(level)],
               msg.c_str());
}

}  // namespace scmp
