#include "util/log.hpp"

#include <cstdio>

namespace scmp {

namespace {
LogLevel g_level = LogLevel::kOff;
}  // namespace

LogLevel log_level() { return g_level; }

void set_log_level(LogLevel level) { g_level = level; }

void log_line(LogLevel level, const std::string& msg) {
  static constexpr const char* kNames[] = {"off", "error", "info", "debug",
                                           "trace"};
  std::fprintf(stderr, "[%s] %s\n", kNames[static_cast<int>(level)],
               msg.c_str());
}

}  // namespace scmp
