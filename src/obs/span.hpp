// Scoped control-plane spans — `OBS_SPAN("dcdm.join")` times the enclosing
// scope and records it into (a) a thread-safe ring-buffer trace sink, for
// the JSONL / Chrome-trace exporters, and (b) a registry histogram
// ("span.<name>.seconds"), for p50/p95/p99 in the Prometheus export.
//
// Cost model: with both tracing and metrics disabled a span is two relaxed
// loads and a branch — no clock read, no allocation. Spans nest; each thread
// tracks its own depth, and records carry a small sequential thread id so
// traces from compute-pool workers stay distinguishable.
//
// Span names must be string literals declared under "spans" in
// src/obs/metrics_manifest.json (tools/lint.py obs-hygiene rule).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace scmp::obs {

namespace detail {
inline std::atomic<bool> g_tracing_enabled{false};
inline thread_local std::uint32_t tls_span_depth = 0;
}  // namespace detail

/// Process-wide tracing switch (the span ring buffer); independent of the
/// metrics switch so traces can be captured without histogram overhead.
inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
void set_tracing_enabled(bool on);

struct SpanRecord {
  const char* name = nullptr;  ///< the OBS_SPAN string literal
  std::uint64_t start_ns = 0;  ///< steady-clock ns since process start
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;    ///< small sequential per-thread id
  std::uint32_t depth = 0;  ///< nesting depth on its thread (1 = top level)
};

/// Fixed-capacity ring buffer of completed spans: recording never blocks on
/// I/O or grows memory; when full, the oldest records are overwritten.
/// Thread-safe: compute-pool workers record concurrently with exporter
/// snapshots; every member is guarded by `mu_` and clang's thread-safety
/// analysis (the `tsa` preset) enforces the discipline.
class SpanSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit SpanSink(std::size_t capacity = kDefaultCapacity);

  void record(const SpanRecord& r) EXCLUDES(mu_);

  /// Retained records, oldest first.
  std::vector<SpanRecord> snapshot() const EXCLUDES(mu_);

  /// Records ever recorded (>= snapshot().size() once wrapped).
  std::uint64_t total_recorded() const EXCLUDES(mu_);

  /// Records overwritten because the ring was full (also surfaced as the
  /// obs.spans.dropped counter), so truncated traces are detectable.
  std::uint64_t dropped() const EXCLUDES(mu_);

  /// Resizes the ring; drops currently retained records.
  void set_capacity(std::size_t capacity) EXCLUDES(mu_);
  void clear() EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  std::vector<SpanRecord> ring_ GUARDED_BY(mu_);
  std::size_t capacity_ GUARDED_BY(mu_);
  std::size_t next_ GUARDED_BY(mu_) = 0;  ///< next write slot
  std::uint64_t total_ GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

/// The process-wide sink every Span records into.
SpanSink& span_sink();

/// Steady-clock nanoseconds since the process's first observability call.
std::uint64_t now_ns();

/// Small sequential id of the calling thread (0 for the first caller).
std::uint32_t this_thread_tid();

/// RAII scope timer; prefer the OBS_SPAN macro.
class Span {
 public:
  explicit Span(const char* name) {
    if (!tracing_enabled() && !metrics_enabled()) return;
    begin(name);
  }
  ~Span() {
    if (name_ != nullptr) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name);
  void end();

  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint32_t depth_ = 0;
};

#define OBS_CONCAT_INNER(a, b) a##b
#define OBS_CONCAT(a, b) OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope under `name` (a string literal).
#define OBS_SPAN(name) \
  const ::scmp::obs::Span OBS_CONCAT(obs_span_, __LINE__) { name }

}  // namespace scmp::obs
