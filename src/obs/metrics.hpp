// Process-wide metrics registry — the unified observability layer's
// counters, gauges and fixed-bucket histograms (docs/observability.md).
//
// Design constraints:
//   * A disabled metric costs one relaxed atomic load and a branch — cheap
//     enough to leave instrumentation in every hot path permanently.
//   * Enabled updates are relaxed atomic operations: safe from any thread
//     (compute-pool workers, fabric routing) with no locks on the hot path.
//   * Registration is mutex-guarded and returns references that stay valid
//     for the process lifetime, so call sites cache them in function-local
//     statics and pay the name lookup exactly once.
//
// Every metric name used in src/, bench/ or examples/ must be declared in
// src/obs/metrics_manifest.json (tools/lint.py obs-hygiene rule).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hpp"

namespace scmp::obs {

namespace detail {
inline std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

/// Process-wide metrics switch. Off by default so simulations and benches
/// run uninstrumented; ObsSession / tests flip it on.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on);

/// Monotone event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) {
    if (!metrics_enabled()) return;
    v_.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depths, sizes).
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram (LogBuckets layout, see util/stats.hpp) with
/// approximate p50/p95/p99. Updates are relaxed per-bucket increments.
class Histogram {
 public:
  void observe(double x) {
    if (!metrics_enabled()) return;
    const auto i = static_cast<std::size_t>(LogBuckets::index(x));
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + x,
                                       std::memory_order_relaxed)) {
    }
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Approximate quantile; 0 when empty.
  double quantile(double q) const;
  std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, LogBuckets::kCount> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Registration / lookup. A (name, tag) pair identifies one time series; the
/// optional tag is exported as a Prometheus label (e.g. the PacketType of a
/// per-type counter). The returned reference is valid forever.
Counter& counter(std::string_view name, std::string_view tag = {});
Gauge& gauge(std::string_view name, std::string_view tag = {});
Histogram& histogram(std::string_view name, std::string_view tag = {});

/// The latency histogram fed by OBS_SPAN's metrics side: registered under
/// "span.<name>.seconds" so span timings appear in the Prometheus export.
Histogram& span_stats(std::string_view span_name);

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One exported sample; what the exporters (obs/export.hpp) consume.
struct MetricSample {
  std::string name;
  std::string tag;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;        ///< counter / gauge reading
  std::uint64_t count = 0;   ///< histogram observations
  double sum = 0.0;          ///< histogram sum
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// Consistent-enough snapshot of every registered metric, sorted by
/// (name, tag) for deterministic export.
std::vector<MetricSample> snapshot();

/// Zeroes every registered metric's value. Registrations (and therefore all
/// cached references) stay valid — tests use this between cases.
void reset_values();

}  // namespace scmp::obs
