// Deterministic time-series sampling of the metrics registry — snapshots
// taken on a *simulated-time* cadence (the caller reports sim time from its
// event loop; no wall clock, no scheduled threads) and serialized as a
// `scmp-timeseries-v1` JSONL stream of per-window counter deltas, gauge
// readings and histogram quantiles.
//
// Determinism: windows are stamped with exact window boundaries, emission is
// sparse (zero counter deltas, zero gauges and unchanged histograms are
// omitted, and fully empty windows are skipped), and wall-clock-fed
// `span.*` histograms are excluded by default — so two fixed-seed runs
// serialize bit-identically regardless of metric registration timing.
//
// Stream format (one JSON object per line):
//   {"schema":"scmp-timeseries-v1","interval":1}
//   {"run":0,"t":1,"counters":{"scmp.joins":3,...},
//    "gauges":{...},"histograms":{"name":{"count":4,"delta":2,
//    "p50":...,"p95":...,"p99":...}}}
// Tagged metrics key as "name{tag}". `t` is the window's *end* boundary;
// counters hold the delta accrued inside (t - interval, t]. `run`
// partitions multi-world processes (scmp_churn_check seeds); begin_run()
// starts a new partition with time rebased to zero.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace scmp::obs {

class TimeseriesSampler {
 public:
  struct HistEntry {
    std::uint64_t count = 0;  ///< cumulative observations at window end
    std::uint64_t delta = 0;  ///< observations inside the window
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  };
  struct Window {
    int run = 0;
    double t = 0.0;  ///< window end boundary, simulated seconds
    std::map<std::string, double> counters;  ///< per-window deltas
    std::map<std::string, double> gauges;
    std::map<std::string, HistEntry> histograms;
  };

  /// Process-wide sampling switch; maybe_sample() is one relaxed load and a
  /// branch while off.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Window length in simulated seconds (default 1.0); rebases the next
  /// window boundary, so set it before sampling starts.
  void set_interval(double seconds) EXCLUDES(mu_);
  double interval() const EXCLUDES(mu_);

  /// Include the wall-clock-fed span.* histograms (off by default: they
  /// would break fixed-seed reproducibility of the stream).
  void set_include_span_stats(bool on) EXCLUDES(mu_);

  /// Starts a new run partition: bumps the run id (if sampling already
  /// happened) and rebases the window clock to zero. Counter baselines are
  /// kept — the registry accumulates across runs.
  void begin_run() EXCLUDES(mu_);

  /// Emits every window boundary passed up to `now` (simulated seconds).
  /// Call from the simulation loop; cheap no-op while disabled.
  void maybe_sample(double now) EXCLUDES(mu_);

  std::vector<Window> windows() const EXCLUDES(mu_);

  /// The full scmp-timeseries-v1 stream (header line + one line per
  /// retained window).
  std::string serialize() const EXCLUDES(mu_);
  void write_jsonl(std::ostream& out) const EXCLUDES(mu_);

  /// Drops windows, baselines and the run partition (keeps interval and
  /// enablement).
  void reset() EXCLUDES(mu_);

 private:
  void sample_window(double t) REQUIRES(mu_);

  std::atomic<bool> enabled_{false};
  mutable util::Mutex mu_;
  double interval_ GUARDED_BY(mu_) = 1.0;
  double next_ GUARDED_BY(mu_) = 1.0;  ///< next window end boundary
  bool include_span_stats_ GUARDED_BY(mu_) = false;
  bool started_ GUARDED_BY(mu_) = false;  ///< any window sampled yet
  int run_ GUARDED_BY(mu_) = 0;
  std::map<std::string, double> prev_counters_ GUARDED_BY(mu_);
  std::map<std::string, std::uint64_t> prev_hist_counts_ GUARDED_BY(mu_);
  std::vector<Window> windows_ GUARDED_BY(mu_);
};

/// The process-wide sampler ObsSession's --timeseries flag enables.
TimeseriesSampler& timeseries();

}  // namespace scmp::obs
