#include "obs/export.hpp"

#include <cctype>
#include <cstdio>
#include <ostream>
#include <set>
#include <string>

#include "util/contracts.hpp"

namespace scmp::obs {

namespace {

/// "net.tx.packets" -> "scmp_net_tx_packets".
std::string prom_name(const std::string& name) {
  std::string out = "scmp_";
  for (char c : name)
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  return out;
}

/// Shortest round-trippable decimal; integers print without an exponent.
std::string num(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v >= -1e15 && v <= 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

std::string label(const MetricSample& s, const std::string& extra = {}) {
  std::string out;
  if (!s.tag.empty()) out += "tag=\"" + s.tag + "\"";
  if (!extra.empty()) {
    if (!out.empty()) out += ",";
    out += extra;
  }
  return out.empty() ? "" : "{" + out + "}";
}

const char* type_of(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "summary";
  }
  return "untyped";
}

std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

}  // namespace

void write_prometheus(std::ostream& out,
                      const std::vector<MetricSample>& samples) {
  SCMP_EXPECTS(out.good());
  std::string last_family;
  for (const MetricSample& s : samples) {
    std::string family = prom_name(s.name);
    if (s.kind == MetricKind::kCounter) family += "_total";
    if (family != last_family) {
      out << "# TYPE " << family << " " << type_of(s.kind) << "\n";
      last_family = family;
    }
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out << family << label(s) << " " << num(s.value) << "\n";
        break;
      case MetricKind::kHistogram:
        out << family << label(s, "quantile=\"0.5\"") << " " << num(s.p50)
            << "\n";
        out << family << label(s, "quantile=\"0.95\"") << " " << num(s.p95)
            << "\n";
        out << family << label(s, "quantile=\"0.99\"") << " " << num(s.p99)
            << "\n";
        out << family << "_sum" << label(s) << " " << num(s.sum) << "\n";
        out << family << "_count" << label(s) << " " << s.count << "\n";
        break;
    }
  }
}

void write_prometheus(std::ostream& out) { write_prometheus(out, snapshot()); }

void write_spans_jsonl(std::ostream& out,
                       const std::vector<SpanRecord>& spans) {
  SCMP_EXPECTS(out.good());
  for (const SpanRecord& r : spans) {
    out << "{\"name\":\"" << json_escape(r.name) << "\",\"start_ns\":"
        << r.start_ns << ",\"dur_ns\":" << r.dur_ns << ",\"tid\":" << r.tid
        << ",\"depth\":" << r.depth << "}\n";
  }
}

void write_spans_jsonl(std::ostream& out) {
  write_spans_jsonl(out, span_sink().snapshot());
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanRecord>& spans) {
  SCMP_EXPECTS(out.good());
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Metadata events first, so Perfetto labels the process and each thread
  // track instead of showing bare pid/tid numbers.
  out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      << "\"args\":{\"name\":\"scmp\"}}";
  std::set<std::uint32_t> tids;
  for (const SpanRecord& r : spans) tids.insert(r.tid);
  for (std::uint32_t tid : tids) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << tid << ",\"args\":{\"name\":\""
        << (tid == 0 ? "main" : "worker-" + std::to_string(tid)) << "\"}}";
  }
  for (const SpanRecord& r : spans) {
    out << ",";
    char ts[32], dur[32];
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(r.start_ns) / 1e3);
    std::snprintf(dur, sizeof(dur), "%.3f",
                  static_cast<double>(r.dur_ns) / 1e3);
    out << "\n{\"name\":\"" << json_escape(r.name)
        << "\",\"cat\":\"scmp\",\"ph\":\"X\",\"ts\":" << ts
        << ",\"dur\":" << dur << ",\"pid\":1,\"tid\":" << r.tid << "}";
  }
  out << "\n]}\n";
}

void write_chrome_trace(std::ostream& out) {
  write_chrome_trace(out, span_sink().snapshot());
}

}  // namespace scmp::obs
