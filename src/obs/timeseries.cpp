#include "obs/timeseries.hpp"

#include <cstdio>
#include <ostream>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace scmp::obs {

namespace {

/// Shortest round-trippable decimal; integers print without an exponent.
std::string num(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v >= -1e15 && v <= 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

std::string series_key(const MetricSample& s) {
  return s.tag.empty() ? s.name : s.name + "{" + s.tag + "}";
}

}  // namespace

void TimeseriesSampler::set_interval(double seconds) {
  SCMP_EXPECTS(seconds > 0.0);
  const util::LockGuard lock(mu_);
  interval_ = seconds;
  next_ = seconds;
}

double TimeseriesSampler::interval() const {
  const util::LockGuard lock(mu_);
  return interval_;
}

void TimeseriesSampler::set_include_span_stats(bool on) {
  const util::LockGuard lock(mu_);
  include_span_stats_ = on;
}

void TimeseriesSampler::begin_run() {
  const util::LockGuard lock(mu_);
  if (started_) ++run_;
  started_ = false;
  next_ = interval_;
}

void TimeseriesSampler::maybe_sample(double now) {
  if (!enabled()) return;
  const util::LockGuard lock(mu_);
  while (now >= next_) {
    sample_window(next_);
    next_ += interval_;
  }
}

void TimeseriesSampler::sample_window(double t) {
  started_ = true;
  Window w;
  w.run = run_;
  w.t = t;
  for (const MetricSample& s : obs::snapshot()) {
    const std::string key = series_key(s);
    switch (s.kind) {
      case MetricKind::kCounter: {
        const double delta = s.value - prev_counters_[key];
        prev_counters_[key] = s.value;
        if (delta != 0.0) w.counters[key] = delta;
        break;
      }
      case MetricKind::kGauge:
        if (s.value != 0.0) w.gauges[key] = s.value;
        break;
      case MetricKind::kHistogram: {
        if (!include_span_stats_ &&
            std::string_view(s.name).starts_with("span.")) {
          break;
        }
        const std::uint64_t delta = s.count - prev_hist_counts_[key];
        prev_hist_counts_[key] = s.count;
        if (delta != 0) {
          w.histograms[key] = HistEntry{s.count, delta, s.p50, s.p95, s.p99};
        }
        break;
      }
    }
  }
  if (w.counters.empty() && w.gauges.empty() && w.histograms.empty()) return;
  windows_.push_back(std::move(w));
}

std::vector<TimeseriesSampler::Window> TimeseriesSampler::windows() const {
  const util::LockGuard lock(mu_);
  return windows_;
}

std::string TimeseriesSampler::serialize() const {
  const util::LockGuard lock(mu_);
  std::string out = "{\"schema\":\"scmp-timeseries-v1\",\"interval\":" +
                    num(interval_) + "}\n";
  for (const Window& w : windows_) {
    out += "{\"run\":" + std::to_string(w.run) + ",\"t\":" + num(w.t) +
           ",\"counters\":{";
    bool first = true;
    for (const auto& [key, delta] : w.counters) {
      if (!first) out += ",";
      first = false;
      out += "\"" + key + "\":" + num(delta);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [key, value] : w.gauges) {
      if (!first) out += ",";
      first = false;
      out += "\"" + key + "\":" + num(value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [key, h] : w.histograms) {
      if (!first) out += ",";
      first = false;
      out += "\"" + key + "\":{\"count\":" + std::to_string(h.count) +
             ",\"delta\":" + std::to_string(h.delta) + ",\"p50\":" +
             num(h.p50) + ",\"p95\":" + num(h.p95) + ",\"p99\":" +
             num(h.p99) + "}";
    }
    out += "}}\n";
  }
  return out;
}

void TimeseriesSampler::write_jsonl(std::ostream& out) const {
  SCMP_EXPECTS(out.good());
  out << serialize();
}

void TimeseriesSampler::reset() {
  const util::LockGuard lock(mu_);
  windows_.clear();
  prev_counters_.clear();
  prev_hist_counts_.clear();
  started_ = false;
  run_ = 0;
  next_ = interval_;
}

TimeseriesSampler& timeseries() {
  static TimeseriesSampler sampler;
  return sampler;
}

}  // namespace scmp::obs
