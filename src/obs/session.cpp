#include "obs/session.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "util/contracts.hpp"

namespace scmp::obs {

namespace {

/// Matches `--flag`, `--flag=VALUE` and `--flag VALUE` at argv[i]; fills
/// `value` (keeping the given default for the bare form) and returns the
/// number of argv slots consumed (0 = no match).
int match_flag(int argc, char** argv, int i, const char* flag,
               std::string& value) {
  const std::size_t flag_len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, flag_len) != 0) return 0;
  const char* rest = argv[i] + flag_len;
  if (*rest == '=') {
    value = rest + 1;
    return 1;
  }
  if (*rest != '\0') return 0;  // a longer flag sharing the prefix
  if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
    value = argv[i + 1];
    return 2;
  }
  return 1;  // bare form: keep the default value
}

bool write_file(const std::string& path,
                const std::function<void(std::ostream&)>& writer) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "obs: cannot write " << path << "\n";
    return false;
  }
  writer(out);
  return true;
}

}  // namespace

ObsSession::ObsSession(int& argc, char** argv) {
  SCMP_EXPECTS(argv != nullptr);
  std::string metrics = "metrics.prom";
  std::string trace = "trace";
  std::string timeseries_file = "timeseries.jsonl";
  std::string ts_interval;
  std::string flight = "flight";
  int out = 0;
  for (int i = 0; i < argc;) {
    int used = match_flag(argc, argv, i, "--metrics", metrics);
    if (used > 0) {
      metrics_path_ = metrics;
      i += used;
      continue;
    }
    used = match_flag(argc, argv, i, "--trace", trace);
    if (used > 0) {
      trace_base_ = trace;
      i += used;
      continue;
    }
    used = match_flag(argc, argv, i, "--timeseries-interval", ts_interval);
    if (used > 0) {
      i += used;
      continue;
    }
    used = match_flag(argc, argv, i, "--timeseries", timeseries_file);
    if (used > 0) {
      timeseries_path_ = timeseries_file;
      i += used;
      continue;
    }
    used = match_flag(argc, argv, i, "--flight", flight);
    if (used > 0) {
      flight_base_ = flight;
      i += used;
      continue;
    }
    argv[out++] = argv[i++];
  }
  argc = out;
  argv[argc] = nullptr;
  if (metrics_requested()) set_metrics_enabled(true);
  if (trace_requested()) set_tracing_enabled(true);
  if (timeseries_requested()) {
    set_metrics_enabled(true);  // the sampler reads the registry
    if (!ts_interval.empty()) {
      const double seconds = std::strtod(ts_interval.c_str(), nullptr);
      if (seconds > 0.0) obs::timeseries().set_interval(seconds);
    }
    obs::timeseries().set_enabled(true);
  }
  if (flight_requested()) set_flight_enabled(true);
}

ObsSession::~ObsSession() {
  if (!written_) write_now();
}

bool ObsSession::write_now() {
  written_ = true;
  bool ok = true;
  if (metrics_requested()) {
    ok &= write_file(metrics_path_,
                     [](std::ostream& out) { write_prometheus(out); });
  }
  if (trace_requested()) {
    ok &= write_file(trace_base_ + ".jsonl",
                     [](std::ostream& out) { write_spans_jsonl(out); });
    ok &= write_file(trace_base_ + ".chrome.json",
                     [](std::ostream& out) { write_chrome_trace(out); });
  }
  if (timeseries_requested()) {
    ok &= write_file(timeseries_path_, [](std::ostream& out) {
      obs::timeseries().write_jsonl(out);
    });
  }
  if (flight_requested()) {
    ok &= write_file(flight_base_ + ".jsonl",
                     [](std::ostream& out) { write_flight_jsonl(out); });
    ok &= write_file(flight_base_ + ".chrome.json",
                     [](std::ostream& out) { write_flight_chrome(out); });
  }
  return ok;
}

}  // namespace scmp::obs
