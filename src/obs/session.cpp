#include "obs/session.hpp"

#include <cstring>
#include <fstream>
#include <iostream>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/contracts.hpp"

namespace scmp::obs {

namespace {

/// Matches `--flag`, `--flag=VALUE` and `--flag VALUE` at argv[i]; fills
/// `value` (keeping the given default for the bare form) and returns the
/// number of argv slots consumed (0 = no match).
int match_flag(int argc, char** argv, int i, const char* flag,
               std::string& value) {
  const std::size_t flag_len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, flag_len) != 0) return 0;
  const char* rest = argv[i] + flag_len;
  if (*rest == '=') {
    value = rest + 1;
    return 1;
  }
  if (*rest != '\0') return 0;  // a longer flag sharing the prefix
  if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
    value = argv[i + 1];
    return 2;
  }
  return 1;  // bare form: keep the default value
}

bool write_file(const std::string& path,
                void (*writer)(std::ostream&)) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "obs: cannot write " << path << "\n";
    return false;
  }
  writer(out);
  return true;
}

}  // namespace

ObsSession::ObsSession(int& argc, char** argv) {
  SCMP_EXPECTS(argv != nullptr);
  std::string metrics = "metrics.prom";
  std::string trace = "trace";
  int out = 0;
  for (int i = 0; i < argc;) {
    int used = match_flag(argc, argv, i, "--metrics", metrics);
    if (used > 0) {
      metrics_path_ = metrics;
      i += used;
      continue;
    }
    used = match_flag(argc, argv, i, "--trace", trace);
    if (used > 0) {
      trace_base_ = trace;
      i += used;
      continue;
    }
    argv[out++] = argv[i++];
  }
  argc = out;
  argv[argc] = nullptr;
  if (metrics_requested()) set_metrics_enabled(true);
  if (trace_requested()) set_tracing_enabled(true);
}

ObsSession::~ObsSession() {
  if (!written_) write_now();
}

bool ObsSession::write_now() {
  written_ = true;
  bool ok = true;
  if (metrics_requested()) {
    ok &= write_file(metrics_path_,
                     static_cast<void (*)(std::ostream&)>(&write_prometheus));
  }
  if (trace_requested()) {
    ok &= write_file(trace_base_ + ".jsonl",
                     static_cast<void (*)(std::ostream&)>(&write_spans_jsonl));
    ok &= write_file(
        trace_base_ + ".chrome.json",
        static_cast<void (*)(std::ostream&)>(&write_chrome_trace));
  }
  return ok;
}

}  // namespace scmp::obs
