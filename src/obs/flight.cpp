#include "obs/flight.hpp"

#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <string>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace scmp::obs {

void set_flight_enabled(bool on) {
  detail::g_flight_enabled.store(on, std::memory_order_relaxed);
}

const char* to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSend: return "send";
    case FlightEventKind::kArm: return "arm";
    case FlightEventKind::kRecv: return "recv";
    case FlightEventKind::kDuplicate: return "dup";
    case FlightEventKind::kAck: return "ack";
    case FlightEventKind::kRetx: return "retx";
    case FlightEventKind::kExhausted: return "exhausted";
    case FlightEventKind::kHandle: return "handle";
    case FlightEventKind::kCompute: return "compute";
    case FlightEventKind::kInstalled: return "installed";
    case FlightEventKind::kRepair: return "repair";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  SCMP_EXPECTS(capacity > 0);
}

void FlightRecorder::record(const FlightRecord& r) {
  const util::LockGuard lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(r);
  } else {
    ring_[next_] = r;
    ++dropped_;
    static Counter& drops = obs::counter("obs.flight.dropped");
    drops.inc();
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  const util::LockGuard lock(mu_);
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Full ring: next_ is the oldest record.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

std::uint64_t FlightRecorder::total_recorded() const {
  const util::LockGuard lock(mu_);
  return total_;
}

std::uint64_t FlightRecorder::dropped() const {
  const util::LockGuard lock(mu_);
  return dropped_;
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  SCMP_EXPECTS(capacity > 0);
  const util::LockGuard lock(mu_);
  capacity_ = capacity;
  ring_.clear();
  next_ = 0;
}

void FlightRecorder::clear() {
  const util::LockGuard lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
  dropped_ = 0;
}

FlightRecorder& flight() {
  static FlightRecorder recorder;
  return recorder;
}

void flight_record(FlightEventKind kind, double t, std::uint64_t req,
                   const char* what, std::int32_t group, std::int32_t from,
                   std::int32_t to) {
  if (!flight_enabled()) return;
  FlightRecord r;
  r.t = t;
  r.req = req;
  r.cause = current_cause();
  r.what = what;
  r.kind = kind;
  r.group = group;
  r.from = from;
  r.to = to;
  flight().record(r);
}

std::vector<FlightRecord> story_of(const std::vector<FlightRecord>& records,
                                   std::uint64_t root_req) {
  if (root_req == 0) return {};
  // Grow the set of chain member requests to a fixpoint: a request joins
  // the chain when any of its records is caused by a member. Records are
  // time-ordered but a request's first record can carry a later-seen cause,
  // so a single forward pass is not enough.
  std::set<std::uint64_t> chain{root_req};
  bool grew = true;
  while (grew) {
    grew = false;
    for (const FlightRecord& r : records) {
      if (r.req == 0 || chain.contains(r.req)) continue;
      if (r.cause != 0 && chain.contains(r.cause)) {
        chain.insert(r.req);
        grew = true;
      }
    }
  }
  std::vector<FlightRecord> out;
  for (const FlightRecord& r : records) {
    if ((r.req != 0 && chain.contains(r.req)) ||
        (r.req == 0 && r.cause != 0 && chain.contains(r.cause))) {
      out.push_back(r);
    }
  }
  return out;
}

namespace {

/// Shortest round-trippable decimal; integers print without an exponent.
std::string num(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v >= -1e15 && v <= 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

/// First-seen cause per request id, for chain-root computation.
std::map<std::uint64_t, std::uint64_t> causes_of(
    const std::vector<FlightRecord>& records) {
  std::map<std::uint64_t, std::uint64_t> cause;
  for (const FlightRecord& r : records) {
    if (r.req != 0) cause.try_emplace(r.req, r.cause);
  }
  return cause;
}

std::uint64_t root_of(const std::map<std::uint64_t, std::uint64_t>& cause,
                      std::uint64_t req) {
  std::set<std::uint64_t> seen;
  while (seen.insert(req).second) {
    const auto it = cause.find(req);
    if (it == cause.end() || it->second == 0) break;
    req = it->second;
  }
  return req;
}

}  // namespace

void write_flight_jsonl(std::ostream& out,
                        const std::vector<FlightRecord>& records) {
  SCMP_EXPECTS(out.good());
  for (const FlightRecord& r : records) {
    out << "{\"t\":" << num(r.t) << ",\"kind\":\"" << to_string(r.kind)
        << "\",\"req\":" << r.req << ",\"cause\":" << r.cause
        << ",\"what\":\"" << json_escape(r.what) << "\",\"group\":" << r.group
        << ",\"from\":" << r.from << ",\"to\":" << r.to << "}\n";
  }
}

void write_flight_jsonl(std::ostream& out) {
  write_flight_jsonl(out, flight().snapshot());
}

void write_flight_chrome(std::ostream& out,
                         const std::vector<FlightRecord>& records) {
  SCMP_EXPECTS(out.good());
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      << "\"args\":{\"name\":\"scmp flight\"}}"
      << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      << "\"args\":{\"name\":\"control-plane\"}}";
  const auto cause = causes_of(records);
  std::map<std::uint64_t, int> chain_total;
  for (const FlightRecord& r : records) {
    if (r.req != 0) ++chain_total[root_of(cause, r.req)];
  }
  std::map<std::uint64_t, int> chain_seen;
  for (const FlightRecord& r : records) {
    char ts[32];
    std::snprintf(ts, sizeof(ts), "%.3f", r.t * 1e6);
    out << ",\n{\"name\":\"" << to_string(r.kind)
        << "\",\"cat\":\"scmp\",\"ph\":\"X\",\"ts\":" << ts
        << ",\"dur\":1,\"pid\":1,\"tid\":0,\"args\":{\"req\":" << r.req
        << ",\"cause\":" << r.cause << ",\"what\":\"" << json_escape(r.what)
        << "\",\"group\":" << r.group << ",\"from\":" << r.from
        << ",\"to\":" << r.to << "}}";
    if (r.req == 0) continue;
    const std::uint64_t root = root_of(cause, r.req);
    const int idx = chain_seen[root]++;
    const bool last = idx + 1 == chain_total[root];
    const char* ph = idx == 0 ? "s" : (last ? "f" : "t");
    out << ",\n{\"name\":\"req\",\"cat\":\"flow\",\"ph\":\"" << ph
        << "\",\"ts\":" << ts << ",\"pid\":1,\"tid\":0,\"id\":" << root
        << (last && idx != 0 ? ",\"bp\":\"e\"" : "") << "}";
  }
  out << "\n]}\n";
}

void write_flight_chrome(std::ostream& out) {
  write_flight_chrome(out, flight().snapshot());
}

}  // namespace scmp::obs
