// CLI glue for the observability layer: one line in main() gives a binary
// the standard `--metrics` / `--trace` flags (scmpsim, the examples and the
// churn checker all use it).
#pragma once

#include <string>

namespace scmp::obs {

/// Scans argv for the observability flags, removes them (so the host
/// program's own parser never sees them) and enables the matching
/// subsystems:
///
///   --metrics[=PATH] | --metrics PATH   enable metrics; Prometheus text is
///                                       written to PATH (default
///                                       "metrics.prom") on destruction.
///   --trace[=BASE]   | --trace BASE     enable span tracing; BASE.jsonl
///                                       (span dump) and BASE.chrome.json
///                                       (Chrome trace_event) are written on
///                                       destruction (default base "trace").
///   --timeseries[=PATH]                 enable metrics plus the sim-time
///                                       sampler; the scmp-timeseries-v1
///                                       stream is written to PATH (default
///                                       "timeseries.jsonl").
///   --timeseries-interval=SECONDS       window length for --timeseries
///                                       (simulated seconds, default 1.0).
///   --flight[=BASE]                     enable the causal flight recorder;
///                                       BASE.jsonl (records) and
///                                       BASE.chrome.json (flow events) are
///                                       written (default base "flight").
class ObsSession {
 public:
  ObsSession(int& argc, char** argv);
  /// Writes any pending exports (also invoked by the destructor, once).
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Writes the export files now; returns false if any write failed.
  bool write_now();

  bool metrics_requested() const { return !metrics_path_.empty(); }
  bool trace_requested() const { return !trace_base_.empty(); }
  bool timeseries_requested() const { return !timeseries_path_.empty(); }
  bool flight_requested() const { return !flight_base_.empty(); }
  const std::string& metrics_path() const { return metrics_path_; }
  const std::string& trace_base() const { return trace_base_; }
  const std::string& timeseries_path() const { return timeseries_path_; }
  const std::string& flight_base() const { return flight_base_; }

 private:
  std::string metrics_path_;
  std::string trace_base_;
  std::string timeseries_path_;
  std::string flight_base_;
  bool written_ = false;
};

}  // namespace scmp::obs
