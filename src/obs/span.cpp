#include "obs/span.hpp"

#include <chrono>

#include "util/contracts.hpp"

namespace scmp::obs {

void set_tracing_enabled(bool on) {
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

SpanSink::SpanSink(std::size_t capacity) : capacity_(capacity) {
  SCMP_EXPECTS(capacity > 0);
}

void SpanSink::record(const SpanRecord& r) {
  const util::LockGuard lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(r);
  } else {
    ring_[next_] = r;
    ++dropped_;
    static Counter& drops = obs::counter("obs.spans.dropped");
    drops.inc();
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<SpanRecord> SpanSink::snapshot() const {
  const util::LockGuard lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Full ring: next_ is the oldest record.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

std::uint64_t SpanSink::total_recorded() const {
  const util::LockGuard lock(mu_);
  return total_;
}

std::uint64_t SpanSink::dropped() const {
  const util::LockGuard lock(mu_);
  return dropped_;
}

void SpanSink::set_capacity(std::size_t capacity) {
  SCMP_EXPECTS(capacity > 0);
  const util::LockGuard lock(mu_);
  capacity_ = capacity;
  ring_.clear();
  next_ = 0;
}

void SpanSink::clear() {
  const util::LockGuard lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
  dropped_ = 0;
}

SpanSink& span_sink() {
  static SpanSink sink;
  return sink;
}

namespace {

std::chrono::steady_clock::time_point process_anchor() {
  static const auto anchor = std::chrono::steady_clock::now();
  return anchor;
}

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_anchor())
          .count());
}

std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next_tid{0};
  thread_local const std::uint32_t tid =
      next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void Span::begin(const char* name) {
  SCMP_EXPECTS(name != nullptr);
  name_ = name;
  depth_ = ++detail::tls_span_depth;
  start_ = now_ns();
}

void Span::end() {
  const std::uint64_t dur = now_ns() - start_;
  --detail::tls_span_depth;
  if (tracing_enabled())
    span_sink().record(
        SpanRecord{name_, start_, dur, this_thread_tid(), depth_});
  if (metrics_enabled())
    span_stats(name_).observe(static_cast<double>(dur) * 1e-9);
}

}  // namespace scmp::obs
