// Causal control-plane flight recorder — a bounded, thread-safe ring of
// lifecycle records keyed by the reliable-delivery request id
// (sim::Packet::req). SCMP send sites, the RetxTable (arm/ack/retx/exhaust),
// receiver handling and reconciliation repairs all append records, so one
// request's full story (JOIN received → DCDM compute → BRANCH/PRUNE wave →
// acks/retx → installed or repaired) is reconstructable after the fact.
//
// Causality: handlers wrap their dispatch in a FlightCause scope carrying
// the incoming request id; any record appended inside the scope (including
// records for *new* requests sent while forwarding) stores that id as its
// `cause`, linking hops into chains. `story_of` walks the cause links to
// recover a whole chain from its root request.
//
// Records carry only primitive fields (the obs layer sits below sim in the
// layer DAG), and timestamps are simulated seconds supplied by the caller —
// no wall clock, so fixed-seed runs serialize bit-identically.
//
// Cost model: with the recorder disabled, flight_record() is one relaxed
// load and a branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/thread_annotations.hpp"

namespace scmp::obs {

namespace detail {
inline std::atomic<bool> g_flight_enabled{false};
inline thread_local std::uint64_t tls_flight_cause = 0;
}  // namespace detail

/// Process-wide flight-recorder switch; independent of metrics/tracing so
/// causal records can be captured without histogram overhead.
inline bool flight_enabled() {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}
void set_flight_enabled(bool on);

enum class FlightEventKind : std::uint8_t {
  kSend,       ///< control packet put on a link / unicast path
  kArm,        ///< RetxTable armed a retry timer for a request
  kRecv,       ///< reliable control packet accepted at a receiver
  kDuplicate,  ///< retransmitted copy deduplicated at a receiver
  kAck,        ///< request acknowledged and retired at the sender
  kRetx,       ///< request retransmitted after an ack timeout
  kExhausted,  ///< request abandoned after the retry budget
  kHandle,     ///< m-router began processing a membership request
  kCompute,    ///< DCDM tree computation ran for the request
  kInstalled,  ///< forwarding state installed at a router
  kRepair,     ///< reconciliation repaired divergent installed state
};
const char* to_string(FlightEventKind kind);

struct FlightRecord {
  double t = 0.0;            ///< simulated seconds
  std::uint64_t req = 0;     ///< sim::Packet::req (0 = fire-and-forget)
  std::uint64_t cause = 0;   ///< request id this record was caused by
  const char* what = "";     ///< packet type / operation (a string literal)
  FlightEventKind kind = FlightEventKind::kSend;
  std::int32_t group = -1;
  std::int32_t from = -1;
  std::int32_t to = -1;
};

/// Fixed-capacity ring of flight records, oldest-overwritten like SpanSink;
/// `dropped()` counts overwritten records so truncated stories are
/// detectable (also surfaced as the obs.flight.dropped counter).
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void record(const FlightRecord& r) EXCLUDES(mu_);

  /// Retained records, oldest first.
  std::vector<FlightRecord> snapshot() const EXCLUDES(mu_);

  /// Records ever recorded (>= snapshot().size() once wrapped).
  std::uint64_t total_recorded() const EXCLUDES(mu_);

  /// Records overwritten because the ring was full.
  std::uint64_t dropped() const EXCLUDES(mu_);

  /// Resizes the ring; drops currently retained records.
  void set_capacity(std::size_t capacity) EXCLUDES(mu_);
  void clear() EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  std::vector<FlightRecord> ring_ GUARDED_BY(mu_);
  std::size_t capacity_ GUARDED_BY(mu_);
  std::size_t next_ GUARDED_BY(mu_) = 0;  ///< next write slot
  std::uint64_t total_ GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

/// The process-wide recorder every flight_record() call appends to.
FlightRecorder& flight();

/// RAII causal scope: records appended while the scope is live carry `req`
/// as their cause. A zero req keeps the enclosing scope's cause (nesting a
/// fire-and-forget hop inside a reliable one must not sever the chain).
class FlightCause {
 public:
  explicit FlightCause(std::uint64_t req) : prev_(detail::tls_flight_cause) {
    if (req != 0) detail::tls_flight_cause = req;
  }
  ~FlightCause() { detail::tls_flight_cause = prev_; }
  FlightCause(const FlightCause&) = delete;
  FlightCause& operator=(const FlightCause&) = delete;

 private:
  std::uint64_t prev_;
};

/// The innermost live FlightCause's request id on this thread (0 = none).
inline std::uint64_t current_cause() {
  return detail::tls_flight_cause;
}

/// Appends one record with the current causal scope attached; a no-op (one
/// relaxed load) while the recorder is disabled.
void flight_record(FlightEventKind kind, double t, std::uint64_t req,
                   const char* what, std::int32_t group, std::int32_t from,
                   std::int32_t to);

/// All records belonging to `root_req`'s causal chain — the root's own
/// records plus those of every request transitively caused by it (and any
/// fire-and-forget records whose cause lies inside the chain) — in the
/// original (time) order.
std::vector<FlightRecord> story_of(const std::vector<FlightRecord>& records,
                                   std::uint64_t root_req);

/// One JSON object per line per record, oldest first.
void write_flight_jsonl(std::ostream& out,
                        const std::vector<FlightRecord>& records);
void write_flight_jsonl(std::ostream& out);

/// Chrome trace_event JSON: one "X" slice per record (ts = simulated µs)
/// plus flow events ("s"/"t"/"f") binding each causal chain together so
/// Perfetto draws arrows from a JOIN to its installs, and
/// process_name/thread_name metadata so the track is labeled.
void write_flight_chrome(std::ostream& out,
                         const std::vector<FlightRecord>& records);
void write_flight_chrome(std::ostream& out);

}  // namespace scmp::obs
