#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>
#include <utility>

#include "util/contracts.hpp"
#include "util/thread_annotations.hpp"

namespace scmp::obs {

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  SCMP_EXPECTS(q >= 0.0 && q <= 1.0);
  return quantile_from_counts(bucket_counts(), q);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

namespace {

using Key = std::pair<std::string, std::string>;

/// The process-wide registry. std::map gives node stability: references
/// handed out survive any later registration. Registration and snapshotting
/// happen from any thread; the maps are guarded by `mu` (enforced by the
/// `tsa` preset's clang thread-safety analysis). The handed-out metric
/// objects themselves are lock-free atomics and need no guard.
struct Registry {
  util::Mutex mu;
  std::map<Key, std::unique_ptr<Counter>> counters GUARDED_BY(mu);
  std::map<Key, std::unique_ptr<Gauge>> gauges GUARDED_BY(mu);
  std::map<Key, std::unique_ptr<Histogram>> histograms GUARDED_BY(mu);
};

Registry& registry() {
  static Registry r;
  return r;
}

template <typename T>
T& get_or_create(std::map<Key, std::unique_ptr<T>>& metrics,
                 std::string_view name, std::string_view tag) {
  SCMP_EXPECTS(!name.empty());
  auto& slot = metrics[Key(std::string(name), std::string(tag))];
  if (!slot) slot = std::make_unique<T>();
  return *slot;
}

}  // namespace

Counter& counter(std::string_view name, std::string_view tag) {
  Registry& r = registry();
  const util::LockGuard lock(r.mu);
  return get_or_create(r.counters, name, tag);
}

Gauge& gauge(std::string_view name, std::string_view tag) {
  Registry& r = registry();
  const util::LockGuard lock(r.mu);
  return get_or_create(r.gauges, name, tag);
}

Histogram& histogram(std::string_view name, std::string_view tag) {
  Registry& r = registry();
  const util::LockGuard lock(r.mu);
  return get_or_create(r.histograms, name, tag);
}

Histogram& span_stats(std::string_view span_name) {
  return histogram("span." + std::string(span_name) + ".seconds");
}

std::vector<MetricSample> snapshot() {
  Registry& r = registry();
  const util::LockGuard lock(r.mu);
  std::vector<MetricSample> out;
  out.reserve(r.counters.size() + r.gauges.size() + r.histograms.size());
  for (const auto& [key, c] : r.counters) {
    MetricSample s;
    s.name = key.first;
    s.tag = key.second;
    s.kind = MetricKind::kCounter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [key, g] : r.gauges) {
    MetricSample s;
    s.name = key.first;
    s.tag = key.second;
    s.kind = MetricKind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [key, h] : r.histograms) {
    MetricSample s;
    s.name = key.first;
    s.tag = key.second;
    s.kind = MetricKind::kHistogram;
    s.count = h->count();
    s.sum = h->sum();
    s.p50 = h->quantile(0.50);
    s.p95 = h->quantile(0.95);
    s.p99 = h->quantile(0.99);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return std::tie(a.name, a.tag) < std::tie(b.name, b.tag);
            });
  return out;
}

void reset_values() {
  Registry& r = registry();
  const util::LockGuard lock(r.mu);
  for (auto& [key, c] : r.counters) c->reset();
  for (auto& [key, g] : r.gauges) g->reset();
  for (auto& [key, h] : r.histograms) h->reset();
}

}  // namespace scmp::obs
