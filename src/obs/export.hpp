// Exporters for the observability layer: Prometheus text exposition of the
// metrics registry, a JSONL span dump, and a Chrome trace_event file
// loadable in about:tracing / Perfetto (docs/observability.md documents the
// formats). Each exporter has a pure overload taking explicit samples (what
// the golden-file tests exercise) and a convenience overload reading the
// process-wide registry / span sink.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace scmp::obs {

/// Prometheus text format: metric names are prefixed "scmp_" with dots
/// mangled to underscores; counters gain the conventional "_total" suffix;
/// tags export as a {tag="..."} label; histograms export as summaries with
/// quantile="0.5|0.95|0.99" series plus _sum and _count.
void write_prometheus(std::ostream& out,
                      const std::vector<MetricSample>& samples);
void write_prometheus(std::ostream& out);

/// One JSON object per line per completed span, oldest first.
void write_spans_jsonl(std::ostream& out,
                       const std::vector<SpanRecord>& spans);
void write_spans_jsonl(std::ostream& out);

/// Chrome trace_event JSON ("X" complete events, microsecond timestamps).
void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanRecord>& spans);
void write_chrome_trace(std::ostream& out);

}  // namespace scmp::obs
