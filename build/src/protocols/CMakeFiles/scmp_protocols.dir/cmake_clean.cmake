file(REMOVE_RECURSE
  "CMakeFiles/scmp_protocols.dir/cbt.cpp.o"
  "CMakeFiles/scmp_protocols.dir/cbt.cpp.o.d"
  "CMakeFiles/scmp_protocols.dir/dvmrp.cpp.o"
  "CMakeFiles/scmp_protocols.dir/dvmrp.cpp.o.d"
  "CMakeFiles/scmp_protocols.dir/mospf.cpp.o"
  "CMakeFiles/scmp_protocols.dir/mospf.cpp.o.d"
  "CMakeFiles/scmp_protocols.dir/multicast_protocol.cpp.o"
  "CMakeFiles/scmp_protocols.dir/multicast_protocol.cpp.o.d"
  "CMakeFiles/scmp_protocols.dir/pimsm.cpp.o"
  "CMakeFiles/scmp_protocols.dir/pimsm.cpp.o.d"
  "libscmp_protocols.a"
  "libscmp_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
