# Empty dependencies file for scmp_protocols.
# This may be replaced when dependencies are built.
