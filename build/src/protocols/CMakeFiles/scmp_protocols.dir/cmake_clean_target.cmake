file(REMOVE_RECURSE
  "libscmp_protocols.a"
)
