
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/cbt.cpp" "src/protocols/CMakeFiles/scmp_protocols.dir/cbt.cpp.o" "gcc" "src/protocols/CMakeFiles/scmp_protocols.dir/cbt.cpp.o.d"
  "/root/repo/src/protocols/dvmrp.cpp" "src/protocols/CMakeFiles/scmp_protocols.dir/dvmrp.cpp.o" "gcc" "src/protocols/CMakeFiles/scmp_protocols.dir/dvmrp.cpp.o.d"
  "/root/repo/src/protocols/mospf.cpp" "src/protocols/CMakeFiles/scmp_protocols.dir/mospf.cpp.o" "gcc" "src/protocols/CMakeFiles/scmp_protocols.dir/mospf.cpp.o.d"
  "/root/repo/src/protocols/multicast_protocol.cpp" "src/protocols/CMakeFiles/scmp_protocols.dir/multicast_protocol.cpp.o" "gcc" "src/protocols/CMakeFiles/scmp_protocols.dir/multicast_protocol.cpp.o.d"
  "/root/repo/src/protocols/pimsm.cpp" "src/protocols/CMakeFiles/scmp_protocols.dir/pimsm.cpp.o" "gcc" "src/protocols/CMakeFiles/scmp_protocols.dir/pimsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/scmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/igmp/CMakeFiles/scmp_igmp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/scmp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
