# Empty dependencies file for scmp_topo.
# This may be replaced when dependencies are built.
