file(REMOVE_RECURSE
  "libscmp_topo.a"
)
