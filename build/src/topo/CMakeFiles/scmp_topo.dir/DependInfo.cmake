
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/arpanet.cpp" "src/topo/CMakeFiles/scmp_topo.dir/arpanet.cpp.o" "gcc" "src/topo/CMakeFiles/scmp_topo.dir/arpanet.cpp.o.d"
  "/root/repo/src/topo/waxman.cpp" "src/topo/CMakeFiles/scmp_topo.dir/waxman.cpp.o" "gcc" "src/topo/CMakeFiles/scmp_topo.dir/waxman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/scmp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
