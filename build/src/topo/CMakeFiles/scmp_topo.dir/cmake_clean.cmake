file(REMOVE_RECURSE
  "CMakeFiles/scmp_topo.dir/arpanet.cpp.o"
  "CMakeFiles/scmp_topo.dir/arpanet.cpp.o.d"
  "CMakeFiles/scmp_topo.dir/waxman.cpp.o"
  "CMakeFiles/scmp_topo.dir/waxman.cpp.o.d"
  "libscmp_topo.a"
  "libscmp_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
