file(REMOVE_RECURSE
  "libscmp_core.a"
)
