file(REMOVE_RECURSE
  "CMakeFiles/scmp_core.dir/compute_pool.cpp.o"
  "CMakeFiles/scmp_core.dir/compute_pool.cpp.o.d"
  "CMakeFiles/scmp_core.dir/database.cpp.o"
  "CMakeFiles/scmp_core.dir/database.cpp.o.d"
  "CMakeFiles/scmp_core.dir/dcdm.cpp.o"
  "CMakeFiles/scmp_core.dir/dcdm.cpp.o.d"
  "CMakeFiles/scmp_core.dir/experiment.cpp.o"
  "CMakeFiles/scmp_core.dir/experiment.cpp.o.d"
  "CMakeFiles/scmp_core.dir/mrouter_node.cpp.o"
  "CMakeFiles/scmp_core.dir/mrouter_node.cpp.o.d"
  "CMakeFiles/scmp_core.dir/placement.cpp.o"
  "CMakeFiles/scmp_core.dir/placement.cpp.o.d"
  "CMakeFiles/scmp_core.dir/scheduler.cpp.o"
  "CMakeFiles/scmp_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/scmp_core.dir/scmp.cpp.o"
  "CMakeFiles/scmp_core.dir/scmp.cpp.o.d"
  "CMakeFiles/scmp_core.dir/tree_packet.cpp.o"
  "CMakeFiles/scmp_core.dir/tree_packet.cpp.o.d"
  "libscmp_core.a"
  "libscmp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
