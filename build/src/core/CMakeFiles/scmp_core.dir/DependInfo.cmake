
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compute_pool.cpp" "src/core/CMakeFiles/scmp_core.dir/compute_pool.cpp.o" "gcc" "src/core/CMakeFiles/scmp_core.dir/compute_pool.cpp.o.d"
  "/root/repo/src/core/database.cpp" "src/core/CMakeFiles/scmp_core.dir/database.cpp.o" "gcc" "src/core/CMakeFiles/scmp_core.dir/database.cpp.o.d"
  "/root/repo/src/core/dcdm.cpp" "src/core/CMakeFiles/scmp_core.dir/dcdm.cpp.o" "gcc" "src/core/CMakeFiles/scmp_core.dir/dcdm.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/scmp_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/scmp_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/mrouter_node.cpp" "src/core/CMakeFiles/scmp_core.dir/mrouter_node.cpp.o" "gcc" "src/core/CMakeFiles/scmp_core.dir/mrouter_node.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/scmp_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/scmp_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/scmp_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/scmp_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/scmp.cpp" "src/core/CMakeFiles/scmp_core.dir/scmp.cpp.o" "gcc" "src/core/CMakeFiles/scmp_core.dir/scmp.cpp.o.d"
  "/root/repo/src/core/tree_packet.cpp" "src/core/CMakeFiles/scmp_core.dir/tree_packet.cpp.o" "gcc" "src/core/CMakeFiles/scmp_core.dir/tree_packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/scmp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/scmp_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/igmp/CMakeFiles/scmp_igmp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/scmp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
