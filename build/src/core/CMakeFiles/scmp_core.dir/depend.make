# Empty dependencies file for scmp_core.
# This may be replaced when dependencies are built.
