# Empty dependencies file for scmp_fabric.
# This may be replaced when dependencies are built.
