file(REMOVE_RECURSE
  "CMakeFiles/scmp_fabric.dir/benes.cpp.o"
  "CMakeFiles/scmp_fabric.dir/benes.cpp.o.d"
  "CMakeFiles/scmp_fabric.dir/ccn.cpp.o"
  "CMakeFiles/scmp_fabric.dir/ccn.cpp.o.d"
  "CMakeFiles/scmp_fabric.dir/ccn_circuit.cpp.o"
  "CMakeFiles/scmp_fabric.dir/ccn_circuit.cpp.o.d"
  "CMakeFiles/scmp_fabric.dir/mrouter_fabric.cpp.o"
  "CMakeFiles/scmp_fabric.dir/mrouter_fabric.cpp.o.d"
  "libscmp_fabric.a"
  "libscmp_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
