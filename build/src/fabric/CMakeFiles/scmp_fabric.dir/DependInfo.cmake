
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/benes.cpp" "src/fabric/CMakeFiles/scmp_fabric.dir/benes.cpp.o" "gcc" "src/fabric/CMakeFiles/scmp_fabric.dir/benes.cpp.o.d"
  "/root/repo/src/fabric/ccn.cpp" "src/fabric/CMakeFiles/scmp_fabric.dir/ccn.cpp.o" "gcc" "src/fabric/CMakeFiles/scmp_fabric.dir/ccn.cpp.o.d"
  "/root/repo/src/fabric/ccn_circuit.cpp" "src/fabric/CMakeFiles/scmp_fabric.dir/ccn_circuit.cpp.o" "gcc" "src/fabric/CMakeFiles/scmp_fabric.dir/ccn_circuit.cpp.o.d"
  "/root/repo/src/fabric/mrouter_fabric.cpp" "src/fabric/CMakeFiles/scmp_fabric.dir/mrouter_fabric.cpp.o" "gcc" "src/fabric/CMakeFiles/scmp_fabric.dir/mrouter_fabric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/scmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
