file(REMOVE_RECURSE
  "libscmp_fabric.a"
)
