file(REMOVE_RECURSE
  "libscmp_igmp.a"
)
