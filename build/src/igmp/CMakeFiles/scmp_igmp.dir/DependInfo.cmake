
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/igmp/igmp.cpp" "src/igmp/CMakeFiles/scmp_igmp.dir/igmp.cpp.o" "gcc" "src/igmp/CMakeFiles/scmp_igmp.dir/igmp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/scmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/scmp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
