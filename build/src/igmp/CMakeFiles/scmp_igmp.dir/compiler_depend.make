# Empty compiler generated dependencies file for scmp_igmp.
# This may be replaced when dependencies are built.
