file(REMOVE_RECURSE
  "CMakeFiles/scmp_igmp.dir/igmp.cpp.o"
  "CMakeFiles/scmp_igmp.dir/igmp.cpp.o.d"
  "libscmp_igmp.a"
  "libscmp_igmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_igmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
