file(REMOVE_RECURSE
  "CMakeFiles/scmp_graph.dir/dijkstra.cpp.o"
  "CMakeFiles/scmp_graph.dir/dijkstra.cpp.o.d"
  "CMakeFiles/scmp_graph.dir/dot.cpp.o"
  "CMakeFiles/scmp_graph.dir/dot.cpp.o.d"
  "CMakeFiles/scmp_graph.dir/graph.cpp.o"
  "CMakeFiles/scmp_graph.dir/graph.cpp.o.d"
  "CMakeFiles/scmp_graph.dir/mst.cpp.o"
  "CMakeFiles/scmp_graph.dir/mst.cpp.o.d"
  "CMakeFiles/scmp_graph.dir/multicast_tree.cpp.o"
  "CMakeFiles/scmp_graph.dir/multicast_tree.cpp.o.d"
  "CMakeFiles/scmp_graph.dir/paths.cpp.o"
  "CMakeFiles/scmp_graph.dir/paths.cpp.o.d"
  "CMakeFiles/scmp_graph.dir/spt.cpp.o"
  "CMakeFiles/scmp_graph.dir/spt.cpp.o.d"
  "CMakeFiles/scmp_graph.dir/steiner.cpp.o"
  "CMakeFiles/scmp_graph.dir/steiner.cpp.o.d"
  "libscmp_graph.a"
  "libscmp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
