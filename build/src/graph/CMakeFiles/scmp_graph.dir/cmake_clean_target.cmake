file(REMOVE_RECURSE
  "libscmp_graph.a"
)
