# Empty dependencies file for scmp_graph.
# This may be replaced when dependencies are built.
