
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dijkstra.cpp" "src/graph/CMakeFiles/scmp_graph.dir/dijkstra.cpp.o" "gcc" "src/graph/CMakeFiles/scmp_graph.dir/dijkstra.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/graph/CMakeFiles/scmp_graph.dir/dot.cpp.o" "gcc" "src/graph/CMakeFiles/scmp_graph.dir/dot.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/scmp_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/scmp_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/mst.cpp" "src/graph/CMakeFiles/scmp_graph.dir/mst.cpp.o" "gcc" "src/graph/CMakeFiles/scmp_graph.dir/mst.cpp.o.d"
  "/root/repo/src/graph/multicast_tree.cpp" "src/graph/CMakeFiles/scmp_graph.dir/multicast_tree.cpp.o" "gcc" "src/graph/CMakeFiles/scmp_graph.dir/multicast_tree.cpp.o.d"
  "/root/repo/src/graph/paths.cpp" "src/graph/CMakeFiles/scmp_graph.dir/paths.cpp.o" "gcc" "src/graph/CMakeFiles/scmp_graph.dir/paths.cpp.o.d"
  "/root/repo/src/graph/spt.cpp" "src/graph/CMakeFiles/scmp_graph.dir/spt.cpp.o" "gcc" "src/graph/CMakeFiles/scmp_graph.dir/spt.cpp.o.d"
  "/root/repo/src/graph/steiner.cpp" "src/graph/CMakeFiles/scmp_graph.dir/steiner.cpp.o" "gcc" "src/graph/CMakeFiles/scmp_graph.dir/steiner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/scmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
