file(REMOVE_RECURSE
  "CMakeFiles/scmp_sim.dir/event_queue.cpp.o"
  "CMakeFiles/scmp_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/scmp_sim.dir/link_load.cpp.o"
  "CMakeFiles/scmp_sim.dir/link_load.cpp.o.d"
  "CMakeFiles/scmp_sim.dir/network.cpp.o"
  "CMakeFiles/scmp_sim.dir/network.cpp.o.d"
  "CMakeFiles/scmp_sim.dir/packet.cpp.o"
  "CMakeFiles/scmp_sim.dir/packet.cpp.o.d"
  "CMakeFiles/scmp_sim.dir/routing.cpp.o"
  "CMakeFiles/scmp_sim.dir/routing.cpp.o.d"
  "CMakeFiles/scmp_sim.dir/trace.cpp.o"
  "CMakeFiles/scmp_sim.dir/trace.cpp.o.d"
  "libscmp_sim.a"
  "libscmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
