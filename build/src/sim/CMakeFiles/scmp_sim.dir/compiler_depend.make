# Empty compiler generated dependencies file for scmp_sim.
# This may be replaced when dependencies are built.
