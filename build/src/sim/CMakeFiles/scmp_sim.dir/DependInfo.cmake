
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/scmp_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/scmp_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/link_load.cpp" "src/sim/CMakeFiles/scmp_sim.dir/link_load.cpp.o" "gcc" "src/sim/CMakeFiles/scmp_sim.dir/link_load.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/scmp_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/scmp_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/packet.cpp" "src/sim/CMakeFiles/scmp_sim.dir/packet.cpp.o" "gcc" "src/sim/CMakeFiles/scmp_sim.dir/packet.cpp.o.d"
  "/root/repo/src/sim/routing.cpp" "src/sim/CMakeFiles/scmp_sim.dir/routing.cpp.o" "gcc" "src/sim/CMakeFiles/scmp_sim.dir/routing.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/scmp_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/scmp_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/scmp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
