file(REMOVE_RECURSE
  "libscmp_sim.a"
)
