# Empty dependencies file for scmp_util.
# This may be replaced when dependencies are built.
