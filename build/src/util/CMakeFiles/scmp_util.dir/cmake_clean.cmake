file(REMOVE_RECURSE
  "CMakeFiles/scmp_util.dir/log.cpp.o"
  "CMakeFiles/scmp_util.dir/log.cpp.o.d"
  "CMakeFiles/scmp_util.dir/rng.cpp.o"
  "CMakeFiles/scmp_util.dir/rng.cpp.o.d"
  "CMakeFiles/scmp_util.dir/stats.cpp.o"
  "CMakeFiles/scmp_util.dir/stats.cpp.o.d"
  "CMakeFiles/scmp_util.dir/table.cpp.o"
  "CMakeFiles/scmp_util.dir/table.cpp.o.d"
  "libscmp_util.a"
  "libscmp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
