file(REMOVE_RECURSE
  "libscmp_util.a"
)
