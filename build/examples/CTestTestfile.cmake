# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_video_conference "/root/repo/build/examples/video_conference")
set_tests_properties(example_video_conference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_software_distribution "/root/repo/build/examples/software_distribution")
set_tests_properties(example_software_distribution PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failover_drill "/root/repo/build/examples/failover_drill")
set_tests_properties(example_failover_drill PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_costs "/root/repo/build/examples/adaptive_costs")
set_tests_properties(example_adaptive_costs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_billing_report "/root/repo/build/examples/billing_report")
set_tests_properties(example_billing_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_elearning "/root/repo/build/examples/elearning")
set_tests_properties(example_elearning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scmpsim "/root/repo/build/examples/scmpsim" "--topo" "arpanet" "--protocol" "scmp" "--group-size" "6")
set_tests_properties(example_scmpsim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scmpsim_pimsm "/root/repo/build/examples/scmpsim" "--topo" "deg5" "--protocol" "pimsm" "--group-size" "12" "--off-tree-source")
set_tests_properties(example_scmpsim_pimsm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
