# Empty compiler generated dependencies file for video_conference.
# This may be replaced when dependencies are built.
