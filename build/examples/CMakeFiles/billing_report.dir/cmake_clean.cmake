file(REMOVE_RECURSE
  "CMakeFiles/billing_report.dir/billing_report.cpp.o"
  "CMakeFiles/billing_report.dir/billing_report.cpp.o.d"
  "billing_report"
  "billing_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billing_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
