# Empty compiler generated dependencies file for billing_report.
# This may be replaced when dependencies are built.
