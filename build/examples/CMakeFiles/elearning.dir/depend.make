# Empty dependencies file for elearning.
# This may be replaced when dependencies are built.
