file(REMOVE_RECURSE
  "CMakeFiles/elearning.dir/elearning.cpp.o"
  "CMakeFiles/elearning.dir/elearning.cpp.o.d"
  "elearning"
  "elearning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
