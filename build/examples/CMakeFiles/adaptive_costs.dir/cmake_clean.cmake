file(REMOVE_RECURSE
  "CMakeFiles/adaptive_costs.dir/adaptive_costs.cpp.o"
  "CMakeFiles/adaptive_costs.dir/adaptive_costs.cpp.o.d"
  "adaptive_costs"
  "adaptive_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
