# Empty dependencies file for adaptive_costs.
# This may be replaced when dependencies are built.
