# Empty compiler generated dependencies file for scmpsim.
# This may be replaced when dependencies are built.
