file(REMOVE_RECURSE
  "CMakeFiles/scmpsim.dir/scmpsim.cpp.o"
  "CMakeFiles/scmpsim.dir/scmpsim.cpp.o.d"
  "scmpsim"
  "scmpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
