# Empty compiler generated dependencies file for software_distribution.
# This may be replaced when dependencies are built.
