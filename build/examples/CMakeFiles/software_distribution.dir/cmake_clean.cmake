file(REMOVE_RECURSE
  "CMakeFiles/software_distribution.dir/software_distribution.cpp.o"
  "CMakeFiles/software_distribution.dir/software_distribution.cpp.o.d"
  "software_distribution"
  "software_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
