# Empty dependencies file for failover_drill.
# This may be replaced when dependencies are built.
