file(REMOVE_RECURSE
  "CMakeFiles/fig7_tree_quality.dir/fig7_tree_quality.cpp.o"
  "CMakeFiles/fig7_tree_quality.dir/fig7_tree_quality.cpp.o.d"
  "fig7_tree_quality"
  "fig7_tree_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tree_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
