# Empty compiler generated dependencies file for fig7_tree_quality.
# This may be replaced when dependencies are built.
