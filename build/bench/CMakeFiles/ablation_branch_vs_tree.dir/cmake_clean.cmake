file(REMOVE_RECURSE
  "CMakeFiles/ablation_branch_vs_tree.dir/ablation_branch_vs_tree.cpp.o"
  "CMakeFiles/ablation_branch_vs_tree.dir/ablation_branch_vs_tree.cpp.o.d"
  "ablation_branch_vs_tree"
  "ablation_branch_vs_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_branch_vs_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
