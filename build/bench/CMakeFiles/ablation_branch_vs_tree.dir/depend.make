# Empty dependencies file for ablation_branch_vs_tree.
# This may be replaced when dependencies are built.
