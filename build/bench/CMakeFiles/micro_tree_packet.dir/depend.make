# Empty dependencies file for micro_tree_packet.
# This may be replaced when dependencies are built.
