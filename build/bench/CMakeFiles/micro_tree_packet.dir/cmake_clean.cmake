file(REMOVE_RECURSE
  "CMakeFiles/micro_tree_packet.dir/micro_tree_packet.cpp.o"
  "CMakeFiles/micro_tree_packet.dir/micro_tree_packet.cpp.o.d"
  "micro_tree_packet"
  "micro_tree_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tree_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
