# Empty compiler generated dependencies file for fig8_overhead.
# This may be replaced when dependencies are built.
