file(REMOVE_RECURSE
  "CMakeFiles/fig8_overhead.dir/fig8_overhead.cpp.o"
  "CMakeFiles/fig8_overhead.dir/fig8_overhead.cpp.o.d"
  "fig8_overhead"
  "fig8_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
