# Empty dependencies file for ablation_dynamic_stability.
# This may be replaced when dependencies are built.
