file(REMOVE_RECURSE
  "CMakeFiles/ablation_dynamic_stability.dir/ablation_dynamic_stability.cpp.o"
  "CMakeFiles/ablation_dynamic_stability.dir/ablation_dynamic_stability.cpp.o.d"
  "ablation_dynamic_stability"
  "ablation_dynamic_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dynamic_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
