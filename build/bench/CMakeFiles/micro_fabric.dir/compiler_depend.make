# Empty compiler generated dependencies file for micro_fabric.
# This may be replaced when dependencies are built.
