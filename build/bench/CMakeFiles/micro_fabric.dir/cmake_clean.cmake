file(REMOVE_RECURSE
  "CMakeFiles/micro_fabric.dir/micro_fabric.cpp.o"
  "CMakeFiles/micro_fabric.dir/micro_fabric.cpp.o.d"
  "micro_fabric"
  "micro_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
