# Empty dependencies file for micro_graph.
# This may be replaced when dependencies are built.
