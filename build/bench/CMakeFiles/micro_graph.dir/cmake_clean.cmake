file(REMOVE_RECURSE
  "CMakeFiles/micro_graph.dir/micro_graph.cpp.o"
  "CMakeFiles/micro_graph.dir/micro_graph.cpp.o.d"
  "micro_graph"
  "micro_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
