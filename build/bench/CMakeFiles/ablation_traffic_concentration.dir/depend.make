# Empty dependencies file for ablation_traffic_concentration.
# This may be replaced when dependencies are built.
