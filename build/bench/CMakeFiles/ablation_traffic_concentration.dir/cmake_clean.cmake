file(REMOVE_RECURSE
  "CMakeFiles/ablation_traffic_concentration.dir/ablation_traffic_concentration.cpp.o"
  "CMakeFiles/ablation_traffic_concentration.dir/ablation_traffic_concentration.cpp.o.d"
  "ablation_traffic_concentration"
  "ablation_traffic_concentration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_traffic_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
