# Empty compiler generated dependencies file for ablation_pimsm_switchover.
# This may be replaced when dependencies are built.
