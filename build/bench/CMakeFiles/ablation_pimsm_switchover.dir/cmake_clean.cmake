file(REMOVE_RECURSE
  "CMakeFiles/ablation_pimsm_switchover.dir/ablation_pimsm_switchover.cpp.o"
  "CMakeFiles/ablation_pimsm_switchover.dir/ablation_pimsm_switchover.cpp.o.d"
  "ablation_pimsm_switchover"
  "ablation_pimsm_switchover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pimsm_switchover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
