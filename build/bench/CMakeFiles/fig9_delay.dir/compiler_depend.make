# Empty compiler generated dependencies file for fig9_delay.
# This may be replaced when dependencies are built.
