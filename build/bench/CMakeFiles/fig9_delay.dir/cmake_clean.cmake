file(REMOVE_RECURSE
  "CMakeFiles/fig9_delay.dir/fig9_delay.cpp.o"
  "CMakeFiles/fig9_delay.dir/fig9_delay.cpp.o.d"
  "fig9_delay"
  "fig9_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
