file(REMOVE_RECURSE
  "CMakeFiles/micro_scheduler.dir/micro_scheduler.cpp.o"
  "CMakeFiles/micro_scheduler.dir/micro_scheduler.cpp.o.d"
  "micro_scheduler"
  "micro_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
