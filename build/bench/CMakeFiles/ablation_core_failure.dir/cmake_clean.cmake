file(REMOVE_RECURSE
  "CMakeFiles/ablation_core_failure.dir/ablation_core_failure.cpp.o"
  "CMakeFiles/ablation_core_failure.dir/ablation_core_failure.cpp.o.d"
  "ablation_core_failure"
  "ablation_core_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_core_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
