# Empty compiler generated dependencies file for ablation_core_failure.
# This may be replaced when dependencies are built.
