# Empty compiler generated dependencies file for micro_compute_pool.
# This may be replaced when dependencies are built.
