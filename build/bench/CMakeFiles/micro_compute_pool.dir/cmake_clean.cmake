file(REMOVE_RECURSE
  "CMakeFiles/micro_compute_pool.dir/micro_compute_pool.cpp.o"
  "CMakeFiles/micro_compute_pool.dir/micro_compute_pool.cpp.o.d"
  "micro_compute_pool"
  "micro_compute_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_compute_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
