# Empty dependencies file for micro_sim.
# This may be replaced when dependencies are built.
