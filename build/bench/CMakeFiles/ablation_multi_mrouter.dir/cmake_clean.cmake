file(REMOVE_RECURSE
  "CMakeFiles/ablation_multi_mrouter.dir/ablation_multi_mrouter.cpp.o"
  "CMakeFiles/ablation_multi_mrouter.dir/ablation_multi_mrouter.cpp.o.d"
  "ablation_multi_mrouter"
  "ablation_multi_mrouter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_mrouter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
