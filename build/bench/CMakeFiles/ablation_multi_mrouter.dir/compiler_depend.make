# Empty compiler generated dependencies file for ablation_multi_mrouter.
# This may be replaced when dependencies are built.
