file(REMOVE_RECURSE
  "CMakeFiles/micro_dcdm.dir/micro_dcdm.cpp.o"
  "CMakeFiles/micro_dcdm.dir/micro_dcdm.cpp.o.d"
  "micro_dcdm"
  "micro_dcdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dcdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
