# Empty dependencies file for micro_dcdm.
# This may be replaced when dependencies are built.
