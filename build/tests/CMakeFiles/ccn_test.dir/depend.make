# Empty dependencies file for ccn_test.
# This may be replaced when dependencies are built.
