file(REMOVE_RECURSE
  "CMakeFiles/ccn_test.dir/fabric/ccn_test.cpp.o"
  "CMakeFiles/ccn_test.dir/fabric/ccn_test.cpp.o.d"
  "ccn_test"
  "ccn_test.pdb"
  "ccn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
