# Empty compiler generated dependencies file for ccn_circuit_test.
# This may be replaced when dependencies are built.
