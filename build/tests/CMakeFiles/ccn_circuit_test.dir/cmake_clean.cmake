file(REMOVE_RECURSE
  "CMakeFiles/ccn_circuit_test.dir/fabric/ccn_circuit_test.cpp.o"
  "CMakeFiles/ccn_circuit_test.dir/fabric/ccn_circuit_test.cpp.o.d"
  "ccn_circuit_test"
  "ccn_circuit_test.pdb"
  "ccn_circuit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccn_circuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
