file(REMOVE_RECURSE
  "CMakeFiles/scmp_multigroup_test.dir/core/scmp_multigroup_test.cpp.o"
  "CMakeFiles/scmp_multigroup_test.dir/core/scmp_multigroup_test.cpp.o.d"
  "scmp_multigroup_test"
  "scmp_multigroup_test.pdb"
  "scmp_multigroup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_multigroup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
