# Empty compiler generated dependencies file for scmp_multigroup_test.
# This may be replaced when dependencies are built.
