# Empty compiler generated dependencies file for cbt_test.
# This may be replaced when dependencies are built.
