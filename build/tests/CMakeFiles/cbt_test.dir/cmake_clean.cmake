file(REMOVE_RECURSE
  "CMakeFiles/cbt_test.dir/protocols/cbt_test.cpp.o"
  "CMakeFiles/cbt_test.dir/protocols/cbt_test.cpp.o.d"
  "cbt_test"
  "cbt_test.pdb"
  "cbt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
