file(REMOVE_RECURSE
  "CMakeFiles/congestion_test.dir/sim/congestion_test.cpp.o"
  "CMakeFiles/congestion_test.dir/sim/congestion_test.cpp.o.d"
  "congestion_test"
  "congestion_test.pdb"
  "congestion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
