# Empty dependencies file for congestion_test.
# This may be replaced when dependencies are built.
