# Empty compiler generated dependencies file for dcdm_test.
# This may be replaced when dependencies are built.
