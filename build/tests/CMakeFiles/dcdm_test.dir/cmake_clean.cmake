file(REMOVE_RECURSE
  "CMakeFiles/dcdm_test.dir/core/dcdm_test.cpp.o"
  "CMakeFiles/dcdm_test.dir/core/dcdm_test.cpp.o.d"
  "dcdm_test"
  "dcdm_test.pdb"
  "dcdm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
