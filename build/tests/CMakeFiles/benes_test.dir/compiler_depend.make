# Empty compiler generated dependencies file for benes_test.
# This may be replaced when dependencies are built.
