file(REMOVE_RECURSE
  "CMakeFiles/benes_test.dir/fabric/benes_test.cpp.o"
  "CMakeFiles/benes_test.dir/fabric/benes_test.cpp.o.d"
  "benes_test"
  "benes_test.pdb"
  "benes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
