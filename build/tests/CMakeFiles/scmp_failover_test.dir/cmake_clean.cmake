file(REMOVE_RECURSE
  "CMakeFiles/scmp_failover_test.dir/core/scmp_failover_test.cpp.o"
  "CMakeFiles/scmp_failover_test.dir/core/scmp_failover_test.cpp.o.d"
  "scmp_failover_test"
  "scmp_failover_test.pdb"
  "scmp_failover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_failover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
