# Empty compiler generated dependencies file for scmp_failover_test.
# This may be replaced when dependencies are built.
