file(REMOVE_RECURSE
  "CMakeFiles/steiner_test.dir/graph/steiner_test.cpp.o"
  "CMakeFiles/steiner_test.dir/graph/steiner_test.cpp.o.d"
  "steiner_test"
  "steiner_test.pdb"
  "steiner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
