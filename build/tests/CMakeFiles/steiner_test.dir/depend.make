# Empty dependencies file for steiner_test.
# This may be replaced when dependencies are built.
