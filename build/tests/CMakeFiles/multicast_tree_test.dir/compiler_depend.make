# Empty compiler generated dependencies file for multicast_tree_test.
# This may be replaced when dependencies are built.
