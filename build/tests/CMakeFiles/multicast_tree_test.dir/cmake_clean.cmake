file(REMOVE_RECURSE
  "CMakeFiles/multicast_tree_test.dir/graph/multicast_tree_test.cpp.o"
  "CMakeFiles/multicast_tree_test.dir/graph/multicast_tree_test.cpp.o.d"
  "multicast_tree_test"
  "multicast_tree_test.pdb"
  "multicast_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
