file(REMOVE_RECURSE
  "CMakeFiles/waxman_test.dir/topo/waxman_test.cpp.o"
  "CMakeFiles/waxman_test.dir/topo/waxman_test.cpp.o.d"
  "waxman_test"
  "waxman_test.pdb"
  "waxman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waxman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
