# Empty compiler generated dependencies file for waxman_test.
# This may be replaced when dependencies are built.
