file(REMOVE_RECURSE
  "CMakeFiles/arpanet_test.dir/topo/arpanet_test.cpp.o"
  "CMakeFiles/arpanet_test.dir/topo/arpanet_test.cpp.o.d"
  "arpanet_test"
  "arpanet_test.pdb"
  "arpanet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arpanet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
