# Empty dependencies file for arpanet_test.
# This may be replaced when dependencies are built.
