file(REMOVE_RECURSE
  "CMakeFiles/tree_packet_test.dir/core/tree_packet_test.cpp.o"
  "CMakeFiles/tree_packet_test.dir/core/tree_packet_test.cpp.o.d"
  "tree_packet_test"
  "tree_packet_test.pdb"
  "tree_packet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
