# Empty dependencies file for tree_packet_test.
# This may be replaced when dependencies are built.
