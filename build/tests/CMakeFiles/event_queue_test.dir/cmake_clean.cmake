file(REMOVE_RECURSE
  "CMakeFiles/event_queue_test.dir/sim/event_queue_test.cpp.o"
  "CMakeFiles/event_queue_test.dir/sim/event_queue_test.cpp.o.d"
  "event_queue_test"
  "event_queue_test.pdb"
  "event_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
