file(REMOVE_RECURSE
  "CMakeFiles/log_test.dir/util/log_test.cpp.o"
  "CMakeFiles/log_test.dir/util/log_test.cpp.o.d"
  "log_test"
  "log_test.pdb"
  "log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
