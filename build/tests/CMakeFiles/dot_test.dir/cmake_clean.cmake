file(REMOVE_RECURSE
  "CMakeFiles/dot_test.dir/graph/dot_test.cpp.o"
  "CMakeFiles/dot_test.dir/graph/dot_test.cpp.o.d"
  "dot_test"
  "dot_test.pdb"
  "dot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
