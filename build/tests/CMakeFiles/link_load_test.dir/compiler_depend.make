# Empty compiler generated dependencies file for link_load_test.
# This may be replaced when dependencies are built.
