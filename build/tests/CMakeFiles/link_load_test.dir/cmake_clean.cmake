file(REMOVE_RECURSE
  "CMakeFiles/link_load_test.dir/sim/link_load_test.cpp.o"
  "CMakeFiles/link_load_test.dir/sim/link_load_test.cpp.o.d"
  "link_load_test"
  "link_load_test.pdb"
  "link_load_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
