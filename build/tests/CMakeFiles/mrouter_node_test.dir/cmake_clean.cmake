file(REMOVE_RECURSE
  "CMakeFiles/mrouter_node_test.dir/core/mrouter_node_test.cpp.o"
  "CMakeFiles/mrouter_node_test.dir/core/mrouter_node_test.cpp.o.d"
  "mrouter_node_test"
  "mrouter_node_test.pdb"
  "mrouter_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrouter_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
