# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mrouter_node_test.
