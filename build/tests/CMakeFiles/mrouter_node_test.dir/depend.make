# Empty dependencies file for mrouter_node_test.
# This may be replaced when dependencies are built.
