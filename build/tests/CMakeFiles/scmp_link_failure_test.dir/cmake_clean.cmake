file(REMOVE_RECURSE
  "CMakeFiles/scmp_link_failure_test.dir/core/scmp_link_failure_test.cpp.o"
  "CMakeFiles/scmp_link_failure_test.dir/core/scmp_link_failure_test.cpp.o.d"
  "scmp_link_failure_test"
  "scmp_link_failure_test.pdb"
  "scmp_link_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_link_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
