# Empty compiler generated dependencies file for scmp_link_failure_test.
# This may be replaced when dependencies are built.
