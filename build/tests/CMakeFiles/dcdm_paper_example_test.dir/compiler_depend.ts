# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dcdm_paper_example_test.
