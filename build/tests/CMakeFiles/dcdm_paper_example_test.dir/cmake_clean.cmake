file(REMOVE_RECURSE
  "CMakeFiles/dcdm_paper_example_test.dir/core/dcdm_paper_example_test.cpp.o"
  "CMakeFiles/dcdm_paper_example_test.dir/core/dcdm_paper_example_test.cpp.o.d"
  "dcdm_paper_example_test"
  "dcdm_paper_example_test.pdb"
  "dcdm_paper_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdm_paper_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
