file(REMOVE_RECURSE
  "CMakeFiles/mrouter_fabric_test.dir/fabric/mrouter_fabric_test.cpp.o"
  "CMakeFiles/mrouter_fabric_test.dir/fabric/mrouter_fabric_test.cpp.o.d"
  "mrouter_fabric_test"
  "mrouter_fabric_test.pdb"
  "mrouter_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrouter_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
