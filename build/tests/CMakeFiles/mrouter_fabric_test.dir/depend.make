# Empty dependencies file for mrouter_fabric_test.
# This may be replaced when dependencies are built.
