# Empty dependencies file for compute_pool_test.
# This may be replaced when dependencies are built.
