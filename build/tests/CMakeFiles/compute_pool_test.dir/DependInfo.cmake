
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/compute_pool_test.cpp" "tests/CMakeFiles/compute_pool_test.dir/core/compute_pool_test.cpp.o" "gcc" "tests/CMakeFiles/compute_pool_test.dir/core/compute_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/scmp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/scmp_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/scmp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/igmp/CMakeFiles/scmp_igmp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/scmp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
