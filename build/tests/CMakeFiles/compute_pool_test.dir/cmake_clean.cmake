file(REMOVE_RECURSE
  "CMakeFiles/compute_pool_test.dir/core/compute_pool_test.cpp.o"
  "CMakeFiles/compute_pool_test.dir/core/compute_pool_test.cpp.o.d"
  "compute_pool_test"
  "compute_pool_test.pdb"
  "compute_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
