file(REMOVE_RECURSE
  "CMakeFiles/dvmrp_test.dir/protocols/dvmrp_test.cpp.o"
  "CMakeFiles/dvmrp_test.dir/protocols/dvmrp_test.cpp.o.d"
  "dvmrp_test"
  "dvmrp_test.pdb"
  "dvmrp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvmrp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
