# Empty dependencies file for dvmrp_test.
# This may be replaced when dependencies are built.
