# Empty dependencies file for scmp_routes_test.
# This may be replaced when dependencies are built.
