file(REMOVE_RECURSE
  "CMakeFiles/scmp_routes_test.dir/core/scmp_routes_test.cpp.o"
  "CMakeFiles/scmp_routes_test.dir/core/scmp_routes_test.cpp.o.d"
  "scmp_routes_test"
  "scmp_routes_test.pdb"
  "scmp_routes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_routes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
