# Empty compiler generated dependencies file for scmp_protocol_test.
# This may be replaced when dependencies are built.
