file(REMOVE_RECURSE
  "CMakeFiles/scmp_protocol_test.dir/core/scmp_protocol_test.cpp.o"
  "CMakeFiles/scmp_protocol_test.dir/core/scmp_protocol_test.cpp.o.d"
  "scmp_protocol_test"
  "scmp_protocol_test.pdb"
  "scmp_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
