file(REMOVE_RECURSE
  "CMakeFiles/paths_test.dir/graph/paths_test.cpp.o"
  "CMakeFiles/paths_test.dir/graph/paths_test.cpp.o.d"
  "paths_test"
  "paths_test.pdb"
  "paths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
