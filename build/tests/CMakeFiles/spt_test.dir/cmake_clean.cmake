file(REMOVE_RECURSE
  "CMakeFiles/spt_test.dir/graph/spt_test.cpp.o"
  "CMakeFiles/spt_test.dir/graph/spt_test.cpp.o.d"
  "spt_test"
  "spt_test.pdb"
  "spt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
