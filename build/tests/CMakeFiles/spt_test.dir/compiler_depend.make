# Empty compiler generated dependencies file for spt_test.
# This may be replaced when dependencies are built.
