file(REMOVE_RECURSE
  "CMakeFiles/scmp_versioning_test.dir/core/scmp_versioning_test.cpp.o"
  "CMakeFiles/scmp_versioning_test.dir/core/scmp_versioning_test.cpp.o.d"
  "scmp_versioning_test"
  "scmp_versioning_test.pdb"
  "scmp_versioning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_versioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
