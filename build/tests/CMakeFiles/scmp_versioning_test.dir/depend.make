# Empty dependencies file for scmp_versioning_test.
# This may be replaced when dependencies are built.
