# Empty compiler generated dependencies file for scmp_multi_mrouter_test.
# This may be replaced when dependencies are built.
