file(REMOVE_RECURSE
  "CMakeFiles/scmp_multi_mrouter_test.dir/core/scmp_multi_mrouter_test.cpp.o"
  "CMakeFiles/scmp_multi_mrouter_test.dir/core/scmp_multi_mrouter_test.cpp.o.d"
  "scmp_multi_mrouter_test"
  "scmp_multi_mrouter_test.pdb"
  "scmp_multi_mrouter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_multi_mrouter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
