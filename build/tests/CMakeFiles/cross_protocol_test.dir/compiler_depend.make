# Empty compiler generated dependencies file for cross_protocol_test.
# This may be replaced when dependencies are built.
