file(REMOVE_RECURSE
  "CMakeFiles/cross_protocol_test.dir/protocols/cross_protocol_test.cpp.o"
  "CMakeFiles/cross_protocol_test.dir/protocols/cross_protocol_test.cpp.o.d"
  "cross_protocol_test"
  "cross_protocol_test.pdb"
  "cross_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
