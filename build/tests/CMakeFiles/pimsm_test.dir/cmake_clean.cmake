file(REMOVE_RECURSE
  "CMakeFiles/pimsm_test.dir/protocols/pimsm_test.cpp.o"
  "CMakeFiles/pimsm_test.dir/protocols/pimsm_test.cpp.o.d"
  "pimsm_test"
  "pimsm_test.pdb"
  "pimsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
