# Empty compiler generated dependencies file for pimsm_test.
# This may be replaced when dependencies are built.
