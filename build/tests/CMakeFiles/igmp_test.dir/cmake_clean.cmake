file(REMOVE_RECURSE
  "CMakeFiles/igmp_test.dir/igmp/igmp_test.cpp.o"
  "CMakeFiles/igmp_test.dir/igmp/igmp_test.cpp.o.d"
  "igmp_test"
  "igmp_test.pdb"
  "igmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
