# Empty compiler generated dependencies file for igmp_test.
# This may be replaced when dependencies are built.
