file(REMOVE_RECURSE
  "CMakeFiles/mospf_test.dir/protocols/mospf_test.cpp.o"
  "CMakeFiles/mospf_test.dir/protocols/mospf_test.cpp.o.d"
  "mospf_test"
  "mospf_test.pdb"
  "mospf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mospf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
