# Empty dependencies file for mospf_test.
# This may be replaced when dependencies are built.
