#!/usr/bin/env python3
"""Aggregates gcov line coverage for src/ without gcovr or lcov.

Walks the instrumented build tree for ``.gcda`` counters (produced by running
the test suite under an ``SCMP_COVERAGE=ON`` build — see the ``coverage``
CMake preset), asks ``gcov --json-format --stdout`` for per-line execution
counts, and merges them per source file: a line counts as covered when any
translation unit executed it (headers are compiled into many TUs).

Typical use (what ``make coverage`` in build-coverage/ runs for you):

    cmake --preset coverage && cmake --build build-coverage -j
    ctest --test-dir build-coverage
    tools/coverage.py --build-dir build-coverage

Exits non-zero when no counters are found, when gcov fails, or when the
total falls below ``--min-total`` (used by CI to pin the baseline).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys


def gcov_json(gcda: pathlib.Path) -> dict:
    out = subprocess.run(
        ["gcov", "--json-format", "--stdout", str(gcda)],
        capture_output=True, text=True, cwd=gcda.parent)
    if out.returncode != 0:
        raise RuntimeError(f"gcov failed on {gcda}: {out.stderr.strip()}")
    return json.loads(out.stdout)


def collect(build_dir: pathlib.Path, src_root: pathlib.Path):
    """Merges per-line hit counts: {source file: {line: max hits}}."""
    lines_by_file: dict[pathlib.Path, dict[int, int]] = {}
    gcdas = sorted(build_dir.rglob("*.gcda"))
    for gcda in gcdas:
        for entry in gcov_json(gcda).get("files", []):
            path = pathlib.Path(entry["file"])
            if not path.is_absolute():
                path = (gcda.parent / path).resolve()
            try:
                path.relative_to(src_root)
            except ValueError:
                continue  # system/test/third-party source
            merged = lines_by_file.setdefault(path, {})
            for ln in entry.get("lines", []):
                no = ln["line_number"]
                merged[no] = max(merged.get(no, 0), ln["count"])
    return gcdas, lines_by_file


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", type=pathlib.Path,
                    default=pathlib.Path("build-coverage"),
                    help="instrumented build tree holding the .gcda counters")
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parent.parent,
                    help="repository root")
    ap.add_argument("--min-total", type=float, default=0.0,
                    help="fail when total line coverage %% is below this")
    args = ap.parse_args()

    root = args.root.resolve()
    src_root = root / "src"
    build_dir = args.build_dir.resolve()
    if not build_dir.is_dir():
        print(f"coverage: build dir {build_dir} not found "
              "(configure with --preset coverage first)", file=sys.stderr)
        return 1

    gcdas, lines_by_file = collect(build_dir, src_root)
    if not gcdas:
        print(f"coverage: no .gcda counters under {build_dir}; "
              "build with SCMP_COVERAGE=ON and run the tests first",
              file=sys.stderr)
        return 1

    total_lines = total_hit = 0
    rows = []
    for path in sorted(lines_by_file):
        merged = lines_by_file[path]
        n, hit = len(merged), sum(1 for c in merged.values() if c > 0)
        if n == 0:
            continue  # header seen by gcov but with no executable lines
        total_lines += n
        total_hit += hit
        rows.append((str(path.relative_to(root)), hit, n))
    if total_lines == 0:
        print("coverage: counters held no src/ lines", file=sys.stderr)
        return 1

    width = max(len(r[0]) for r in rows)
    for name, hit, n in rows:
        print(f"{name:<{width}}  {100.0 * hit / n:6.1f}%  ({hit}/{n})")
    pct = 100.0 * total_hit / total_lines
    print("-" * (width + 25))
    print(f"{'TOTAL':<{width}}  {pct:6.1f}%  ({total_hit}/{total_lines})")

    if pct < args.min_total:
        print(f"coverage: total {pct:.1f}% is below the required "
              f"{args.min_total:.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
