#!/usr/bin/env bash
# Verifies that every C++ source conforms to .clang-format.
#
#   tools/format-check.sh          # check only (CI mode); non-zero on drift
#   tools/format-check.sh --fix    # rewrite files in place
#
# Skips with a warning (exit 0) when clang-format is not installed, so
# developer machines without LLVM can still run the full local gate;
# CI installs clang-format and enforces it.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format-check: clang-format not found; skipping (CI enforces this)" >&2
  exit 0
fi

mapfile -t files < <(git ls-files 'src/**/*.[ch]pp' 'tests/**/*.[ch]pp' \
  'bench/*.[ch]pp' 'examples/*.[ch]pp' 'tests/*.hpp')

if [[ "${1:-}" == "--fix" ]]; then
  clang-format -i "${files[@]}"
  echo "format-check: reformatted ${#files[@]} files"
  exit 0
fi

status=0
for f in "${files[@]}"; do
  if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "format-check: needs formatting: $f"
    status=1
  fi
done
if [[ $status -eq 0 ]]; then
  echo "format-check: clean (${#files[@]} files)"
fi
exit $status
