#!/usr/bin/env python3
"""Repo-specific lint rules clang-tidy cannot express.

Rules (each failure prints ``file:line: rule-id: message``):

  contracts        every src/**/*.cpp translation unit guards its public
                   entry points with SCMP_EXPECTS/SCMP_ENSURES/SCMP_ASSERT
                   (files with genuinely precondition-free APIs are
                   allowlisted below, with justification).
  include-paths    quoted includes are src/-rooted module paths
                   ("core/dcdm.hpp"), never relative ("../x.hpp") or bare
                   filenames, and must resolve to a tracked file.
  no-naked-new     no `new` / `delete` expressions in src/ — ownership goes
                   through std::unique_ptr / containers.
  no-raw-abort     std::abort/exit/_Exit only inside util/contracts.hpp;
                   everything else fails through the contract macros so the
                   diagnostic names the violated condition.
  pragma-once      every header starts include-guarding with #pragma once.
  header-using     no `using namespace` at namespace scope in headers.
  verify-hygiene   every public mutating (non-const) method of the classes
                   named in src/verify/coverage_manifest.json is mapped to at
                   least one registered invariant (or carries an "exempt:"
                   justification), the manifest's invariant list matches
                   verify::kInvariantIds, and no manifest entry is stale.
                   Adding a mutating entry point to src/core/scmp.hpp or
                   src/fabric/mrouter_fabric.hpp fails lint until the
                   verification catalog covers it.
  obs-hygiene      every metric name passed to obs::counter/gauge/histogram
                   and every OBS_SPAN label in src/ (outside src/obs/ itself),
                   bench/ and examples/ is declared with the matching kind in
                   src/obs/metrics_manifest.json, and every declared entry is
                   still used somewhere — instrumentation and manifest cannot
                   drift apart in either direction. tests/ is exempt: tests
                   exercise the registry with throwaway "test.*" names.
                   Additionally, every net.tx.* metric's declared "tags" list
                   must equal the wire names of sim::PacketType (parsed from
                   to_string in src/sim/packet.cpp), so adding a packet type
                   without updating the tx-counter manifest fails lint.
  hot-path-alloc   the functions listed in HOT_PATH_FUNCS (DCDM's per-join
                   path and the Dijkstra kernel) must not construct a
                   std::vector or call the allocating convenience accessors
                   (members()/on_tree_nodes()/sl_path()/lc_path()/path_to())
                   — they reuse per-instance scratch buffers instead. A
                   deliberate exception carries a same- or previous-line
                   ``// hot-path: allow(<why>)`` annotation.
  determinism-hygiene
                   every ``// determinism: allow(<reason>)`` annotation in
                   the directories tools/determinism_lint.py scans has a
                   matching (file, reason) entry in
                   tools/determinism_manifest.json and vice versa, and every
                   manifest entry names a known determinism rule. The full
                   rule evaluation (does the annotation actually suppress a
                   finding?) lives in determinism_lint.py; this cross-check
                   catches annotation<->manifest drift even when only one of
                   the two linters runs.
  protocol-hygiene
                   same contract for the protocol-flow linter: every
                   ``// protocol: allow(<reason>)`` and ``// protocol:
                   fire-and-forget(<reason>)`` annotation in the directories
                   tools/protocol_lint.py scans has a matching (file, reason)
                   entry in tools/protocol_manifest.json and vice versa,
                   every ``suppressions`` entry names a known protocol rule,
                   and every ``unpaired_types`` entry names a real
                   sim::PacketType enumerator. Full evaluation lives in
                   protocol_lint.py; this catches drift when only one linter
                   runs.

Usage: tools/lint.py [--root REPO_ROOT]
Exits non-zero when any finding is reported.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

# Translation units whose public API has no checkable preconditions.
NO_CONTRACT_OK = {
    "src/sim/packet.cpp",   # enum-to-string formatters only
    "src/sim/trace.cpp",    # passive recorder; accepts any packet stream
}

# Local convenience headers test/bench sources may include unqualified.
LOCAL_INCLUDE_OK = {"helpers.hpp", "bench_common.hpp"}

# The invariant-coverage manifest the verify-hygiene rule cross-checks.
VERIFY_MANIFEST = "src/verify/coverage_manifest.json"
VERIFY_INVARIANTS_HPP = "src/verify/invariants.hpp"

# The observability-surface manifest the obs-hygiene rule cross-checks.
OBS_MANIFEST = "src/obs/metrics_manifest.json"

# The determinism-suppression manifest the determinism-hygiene rule
# cross-checks. Must stay in sync with tools/determinism_lint.py, which
# performs the full rule evaluation; this rule only guards the
# annotation<->manifest correspondence.
DETERMINISM_MANIFEST = "tools/determinism_manifest.json"
DETERMINISM_SCAN_DIRS = ("src/core", "src/graph", "src/sim", "src/protocols",
                         "src/verify")
DETERMINISM_RULES = ("unordered-iteration", "pointer-key", "wall-clock",
                     "thread-count", "float-equality")
DETERMINISM_ALLOW_TOKEN = "determinism: allow("

# The protocol-suppression manifest the protocol-hygiene rule cross-checks.
# Must stay in sync with tools/protocol_lint.py, which performs the full
# rule evaluation; this rule only guards annotation<->manifest drift.
PROTOCOL_MANIFEST = "tools/protocol_manifest.json"
PROTOCOL_SCAN_DIRS = ("src/core", "src/protocols")
PROTOCOL_RULES = ("dispatch-exhaustiveness", "handler-coverage",
                  "reliability-coverage", "layer-dag")
PROTOCOL_TOKENS = ("protocol: allow(", "protocol: fire-and-forget(")

# Where the PacketType wire grammar lives: the enum and its to_string
# mapping feed the protocol-hygiene and obs-hygiene (net.tx tags) checks.
PACKET_HPP = "src/sim/packet.hpp"
PACKET_CPP = "src/sim/packet.cpp"

# Allocation-free hot paths: file -> function definitions the hot-path-alloc
# rule scans. join() runs per membership change, dijkstra_into() n times per
# path-database rebuild, and the event-queue/transmit trio once per simulated
# event or link crossing; an accidental per-call allocation here is a real
# throughput regression even when every test stays green.
HOT_PATH_FUNCS = {
    "src/core/dcdm.cpp": ("DcdmTree::join", "DcdmTree::leave",
                          "DcdmTree::delay_bound_for"),
    "src/graph/dijkstra.cpp": ("dijkstra_into",),
    "src/sim/event_queue.cpp": ("EventQueue::schedule_at",
                                "EventQueue::run_next"),
    "src/sim/network.cpp": ("Network::transmit",),
}

CONTRACT_RE = re.compile(r"\bSCMP_(EXPECTS|ENSURES|ASSERT)\s*\(")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
NEW_RE = re.compile(r"\bnew\b\s*(?:\(|\[|[A-Za-z_:<])")
DELETE_RE = re.compile(r"(?<![=\w])\s*\bdelete\b\s*(?:\[\s*\])?\s*[A-Za-z_(*]")
ABORT_RE = re.compile(r"\b(?:std\s*::\s*)?(abort|_Exit|quick_exit|exit)\s*\(")
USING_NS_RE = re.compile(r"^\s*using\s+namespace\b")
OBS_SPAN_RE = re.compile(r'\bOBS_SPAN\s*\(\s*"([^"]+)"')
HOT_VECTOR_RE = re.compile(r"\bstd\s*::\s*vector\s*<")
HOT_ALLOC_CALL_RE = re.compile(
    r"[.>]\s*(members|on_tree_nodes|sl_path|lc_path|path_to)\s*\(")
HOT_ALLOW_RE = re.compile(r"hot-path:\s*allow\(")
OBS_METRIC_RE = re.compile(
    r'\bobs\s*::\s*(counter|gauge|histogram)\s*\(\s*"([^"]+)"')


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string literals and char literals, preserving
    line structure so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^()\s]*)\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    i += m.end()
                    continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; bail to keep line numbers sane
                state = "code"
                out.append(c)
        elif state == "raw":
            end = text.find(raw_delim, i)
            if end == -1:
                break
            out.append("\n" * text.count("\n", i, end + len(raw_delim)))
            i = end + len(raw_delim)
            continue
        i += 1
    return "".join(out)


def strip_comments(text: str) -> str:
    """Blanks out comments only, preserving string literals and line
    structure — for rules that inspect the literals themselves (obs-hygiene
    reads metric/span names out of call arguments)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # str | chr
            quote = '"' if state == "str" else "'"
            if c == "\\" and i + 1 < n:
                out.append(text[i:i + 2])
                i += 2
                continue
            if c == quote or c == "\n":
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def function_bodies(code: str, name: str):
    """Yields (body_start_line, body_text) for every *definition* of
    ``name`` (qualified or not) in comment/string-stripped ``code``. Call
    sites are skipped: a definition's parameter list is followed by an
    optional const/noexcept and an opening brace, a call's by ``;`` or an
    operator."""
    n = len(code)
    for m in re.finditer(re.escape(name) + r"\s*\(", code):
        i = m.end() - 1
        depth = 0
        while i < n:
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        after = re.match(r"\s*(?:const\b\s*)?(?:noexcept\b\s*)?\{",
                         code[i + 1:])
        if not after:
            continue
        body_start = i + 1 + after.end()
        depth = 1
        j = body_start
        while j < n and depth > 0:
            if code[j] == "{":
                depth += 1
            elif code[j] == "}":
                depth -= 1
            j += 1
        yield code.count("\n", 0, body_start) + 1, code[body_start:j - 1]


def class_body_declarations(code: str, class_name: str) -> str | None:
    """Returns the top-level declaration text of ``class class_name``'s body
    with nested brace bodies (inline definitions, member structs) collapsed
    to ``;`` so every member reads as a ``;``-terminated declaration.
    ``code`` must already be comment/string-stripped."""
    m = re.search(rf"\bclass\s+{re.escape(class_name)}\b[^;{{]*{{", code)
    if not m:
        return None
    out: list[str] = []
    depth, pdepth = 1, 0
    for c in code[m.end():]:
        if c == "(" and depth == 1:
            pdepth += 1
        elif c == ")" and depth == 1 and pdepth > 0:
            pdepth -= 1
        if pdepth == 0:
            if c == "{":
                depth += 1
                continue
            if c == "}":
                depth -= 1
                if depth == 0:
                    break
                if depth == 1:
                    out.append(";")
                continue
        if depth == 1:
            out.append(c)
    return "".join(out)


def public_mutating_methods(code: str, class_name: str) -> set[str]:
    """Names of the public non-const member functions of ``class_name`` —
    the entry points that may mutate protocol state and therefore need
    invariant coverage. Constructors, destructors, operators and type/member
    declarations are skipped."""
    body = class_body_declarations(code, class_name)
    if body is None:
        return set()
    methods: set[str] = set()
    access = "private"  # class default
    for piece in re.split(r"\b(public|protected|private)\s*:", body):
        if piece in ("public", "protected", "private"):
            access = piece
            continue
        if access != "public":
            continue
        for decl in piece.split(";"):
            decl = " ".join(decl.split())
            paren = decl.find("(")
            if not decl or paren < 0:
                continue
            head = decl[:paren]
            first = head.split(None, 1)[0] if head.split() else ""
            if first in ("using", "typedef", "friend", "static_assert",
                         "struct", "class", "enum"):
                continue
            if "operator" in head or "~" in head:
                continue
            names = re.findall(r"[A-Za-z_]\w*", head)
            if not names or names[-1] == class_name:
                continue  # malformed or a constructor
            nested = 0
            close = paren
            for close in range(paren, len(decl)):
                nested += {"(": 1, ")": -1}.get(decl[close], 0)
                if nested == 0:
                    break
            if re.search(r"\bconst\b", decl[close + 1:]):
                continue  # const-qualified: cannot mutate state
            methods.add(names[-1])
    return methods


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.findings: list[str] = []

    def report(self, path: pathlib.Path, line: int, rule: str, msg: str):
        rel = path.relative_to(self.root)
        self.findings.append(f"{rel}:{line}: {rule}: {msg}")

    # ---- rules -----------------------------------------------------------

    def check_contracts(self, path: pathlib.Path, code: str):
        rel = str(path.relative_to(self.root))
        if rel in NO_CONTRACT_OK:
            if CONTRACT_RE.search(code):
                self.report(path, 1, "contracts",
                            "file uses contracts; drop it from NO_CONTRACT_OK")
            return
        if not CONTRACT_RE.search(code):
            self.report(
                path, 1, "contracts",
                "no SCMP_EXPECTS/SCMP_ENSURES/SCMP_ASSERT in this translation "
                "unit; guard its public entry points (or allowlist it in "
                "tools/lint.py with a justification)")

    def check_includes(self, path: pathlib.Path, raw: str):
        in_tests = "tests/" in str(path.relative_to(self.root)) or \
                   "bench/" in str(path.relative_to(self.root))
        for lineno, line in enumerate(raw.splitlines(), 1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            inc = m.group(1)
            if ".." in inc.split("/"):
                self.report(path, lineno, "include-paths",
                            f'relative include "{inc}"; use a src/-rooted '
                            'module path')
                continue
            if inc in LOCAL_INCLUDE_OK and in_tests:
                continue
            if "/" not in inc:
                self.report(path, lineno, "include-paths",
                            f'bare include "{inc}"; use a src/-rooted module '
                            'path like "core/dcdm.hpp"')
                continue
            if not (self.root / "src" / inc).is_file():
                self.report(path, lineno, "include-paths",
                            f'include "{inc}" does not resolve under src/')

    def check_naked_new(self, path: pathlib.Path, code: str):
        for lineno, line in enumerate(code.splitlines(), 1):
            if NEW_RE.search(line):
                self.report(path, lineno, "no-naked-new",
                            "`new` expression; use std::make_unique or a "
                            "container")
            if DELETE_RE.search(line):
                self.report(path, lineno, "no-naked-new",
                            "`delete` expression; ownership must be RAII")

    def check_raw_abort(self, path: pathlib.Path, code: str):
        if path.name == "contracts.hpp":
            return
        for lineno, line in enumerate(code.splitlines(), 1):
            m = ABORT_RE.search(line)
            if m:
                self.report(path, lineno, "no-raw-abort",
                            f"direct {m.group(1)}() call; fail through "
                            "SCMP_EXPECTS/SCMP_ASSERT so the diagnostic names "
                            "the condition")

    def check_pragma_once(self, path: pathlib.Path, code: str):
        for line in code.splitlines():
            s = line.strip()
            if not s:
                continue
            if s == "#pragma once":
                return
            self.report(path, 1, "pragma-once",
                        "header must start with #pragma once")
            return
        # empty header: fine

    def check_header_using(self, path: pathlib.Path, code: str):
        for lineno, line in enumerate(code.splitlines(), 1):
            if USING_NS_RE.match(line):
                self.report(path, lineno, "header-using",
                            "`using namespace` in a header leaks into every "
                            "includer")

    def check_verify_hygiene(self):
        manifest_path = self.root / VERIFY_MANIFEST
        if not manifest_path.is_file():
            self.report(manifest_path, 1, "verify-hygiene",
                        "coverage manifest is missing")
            return
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as err:
            self.report(manifest_path, getattr(err, "lineno", 1),
                        "verify-hygiene", f"manifest is not valid JSON: {err}")
            return

        # The manifest's invariant list must be exactly the registered ids
        # (the kInvariantIds catalog in invariants.hpp).
        registered = self._registered_invariants()
        declared = manifest.get("invariants", [])
        if registered is not None and sorted(declared) != sorted(registered):
            self.report(
                manifest_path, 1, "verify-hygiene",
                "manifest 'invariants' disagrees with kInvariantIds in "
                f"{VERIFY_INVARIANTS_HPP}: manifest={sorted(declared)} "
                f"registered={sorted(registered)}")
        valid_ids = set(declared) | set(registered or [])

        for rel, spec in manifest.get("entry_points", {}).items():
            header = self.root / rel
            if not header.is_file():
                self.report(manifest_path, 1, "verify-hygiene",
                            f"entry_points names missing file {rel}")
                continue
            raw = header.read_text(encoding="utf-8")
            code = strip_comments_and_strings(raw)
            cls = spec.get("class", "")
            found = public_mutating_methods(code, cls)
            if not found and class_body_declarations(code, cls) is None:
                self.report(manifest_path, 1, "verify-hygiene",
                            f"class {cls} not found in {rel}")
                continue
            mapped = spec.get("methods", {})
            for name in sorted(found - set(mapped)):
                line = 1
                m = re.search(rf"\b{re.escape(name)}\s*\(", code)
                if m:
                    line = code.count("\n", 0, m.start()) + 1
                self.report(
                    header, line, "verify-hygiene",
                    f"public mutating method {cls}::{name} has no invariant "
                    f"coverage; map it in {VERIFY_MANIFEST} (or exempt it "
                    "with a justification)")
            for name, cover in sorted(mapped.items()):
                if name not in found:
                    self.report(manifest_path, 1, "verify-hygiene",
                                f"stale manifest entry {cls}::{name}: no such "
                                f"public mutating method in {rel}")
                    continue
                if isinstance(cover, str):
                    if not cover.startswith("exempt:") or \
                            not cover[len("exempt:"):].strip():
                        self.report(
                            manifest_path, 1, "verify-hygiene",
                            f"{cls}::{name}: string coverage must be "
                            "'exempt: <justification>'")
                    continue
                if not isinstance(cover, list) or not cover:
                    self.report(
                        manifest_path, 1, "verify-hygiene",
                        f"{cls}::{name}: coverage must be a non-empty list "
                        "of invariant ids or an 'exempt:' string")
                    continue
                for inv in cover:
                    if inv not in valid_ids:
                        self.report(
                            manifest_path, 1, "verify-hygiene",
                            f"{cls}::{name}: unknown invariant id '{inv}'")

    def check_obs_hygiene(self):
        manifest_path = self.root / OBS_MANIFEST
        if not manifest_path.is_file():
            self.report(manifest_path, 1, "obs-hygiene",
                        "metrics manifest is missing")
            return
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as err:
            self.report(manifest_path, getattr(err, "lineno", 1),
                        "obs-hygiene", f"manifest is not valid JSON: {err}")
            return
        declared_metrics = {m["name"]: m.get("kind", "")
                            for m in manifest.get("metrics", [])}
        declared_spans = {s["name"] for s in manifest.get("spans", [])}

        used_metrics: dict[tuple[str, str], tuple[pathlib.Path, int]] = {}
        used_spans: dict[str, tuple[pathlib.Path, int]] = {}
        # src/obs is scanned like every other layer: its self-metrics
        # (obs.spans.dropped, obs.flight.dropped) must be declared too. The
        # dynamic span.<name>.seconds registration never matches the literal
        # obs::histogram("...") pattern, so it cannot leak in.
        for d in (self.root / "src", self.root / "bench",
                  self.root / "examples"):
            for path in sorted(d.rglob("*")):
                if path.suffix not in (".cpp", ".hpp"):
                    continue
                code = strip_comments(path.read_text(encoding="utf-8"))
                for lineno, line in enumerate(code.splitlines(), 1):
                    for kind, name in OBS_METRIC_RE.findall(line):
                        used_metrics.setdefault((name, kind), (path, lineno))
                    for name in OBS_SPAN_RE.findall(line):
                        used_spans.setdefault(name, (path, lineno))

        for (name, kind), (path, lineno) in sorted(used_metrics.items()):
            if name not in declared_metrics:
                self.report(path, lineno, "obs-hygiene",
                            f'metric "{name}" is not declared in '
                            f"{OBS_MANIFEST}")
            elif declared_metrics[name] != kind:
                self.report(
                    path, lineno, "obs-hygiene",
                    f'metric "{name}" used as a {kind} but declared as a '
                    f"{declared_metrics[name]} in {OBS_MANIFEST}")
        for name, (path, lineno) in sorted(used_spans.items()):
            if name not in declared_spans:
                self.report(path, lineno, "obs-hygiene",
                            f'span "{name}" is not declared in '
                            f"{OBS_MANIFEST}")
        used_metric_names = {name for name, _ in used_metrics}
        for name in sorted(set(declared_metrics) - used_metric_names):
            self.report(manifest_path, 1, "obs-hygiene",
                        f'stale manifest metric "{name}": no obs::counter/'
                        "gauge/histogram call uses it")
        for name in sorted(declared_spans - set(used_spans)):
            self.report(manifest_path, 1, "obs-hygiene",
                        f'stale manifest span "{name}": no OBS_SPAN uses it')

        # The per-type net.tx.* counters are tagged with to_string(t); their
        # declared "tags" lists must track the PacketType wire grammar
        # exactly, so a new packet type fails lint until the observability
        # surface acknowledges it.
        wire = self._packet_wire_names()
        if wire is not None:
            for entry in manifest.get("metrics", []):
                name = entry.get("name", "")
                if not name.startswith("net.tx."):
                    continue
                tags = entry.get("tags", [])
                missing = sorted(set(wire) - set(tags))
                unknown = sorted(set(tags) - set(wire))
                if missing or unknown:
                    self.report(
                        manifest_path, 1, "obs-hygiene",
                        f'metric "{name}" tags disagree with the PacketType '
                        f"wire names in {PACKET_CPP}: missing={missing} "
                        f"unknown={unknown}")

    def _determinism_annotations(self, raw: str) -> list[tuple[int, str]]:
        """(line, whitespace-collapsed reason) for every ``determinism:
        allow(<reason>)`` in ``raw``; the reason may wrap across comment
        lines and ends at the balanced closing parenthesis."""
        out = []
        pos = 0
        while True:
            start = raw.find(DETERMINISM_ALLOW_TOKEN, pos)
            if start < 0:
                return out
            open_paren = start + len(DETERMINISM_ALLOW_TOKEN) - 1
            depth, i = 0, open_paren
            while i < len(raw):
                if raw[i] == "(":
                    depth += 1
                elif raw[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            reason = re.sub(r"\n\s*//+", " ", raw[open_paren + 1:i])
            out.append((raw.count("\n", 0, start) + 1,
                        " ".join(reason.split())))
            pos = i + 1

    def check_determinism_hygiene(self):
        manifest_path = self.root / DETERMINISM_MANIFEST
        if not manifest_path.is_file():
            self.report(manifest_path, 1, "determinism-hygiene",
                        "determinism suppression manifest is missing")
            return
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as err:
            self.report(manifest_path, getattr(err, "lineno", 1),
                        "determinism-hygiene",
                        f"manifest is not valid JSON: {err}")
            return

        declared: set[tuple[str, str]] = set()
        for entry in manifest.get("suppressions", []):
            rule = entry.get("rule", "")
            if rule not in DETERMINISM_RULES:
                self.report(manifest_path, 1, "determinism-hygiene",
                            f"unknown determinism rule '{rule}' (expected one "
                            f"of {', '.join(DETERMINISM_RULES)})")
                continue
            rel, reason = entry.get("file", ""), entry.get("reason", "")
            if not rel or not reason.strip():
                self.report(manifest_path, 1, "determinism-hygiene",
                            "suppression entry needs non-empty 'file', "
                            "'rule' and 'reason'")
                continue
            declared.add((rel, " ".join(reason.split())))

        live: set[tuple[str, str]] = set()
        for d in DETERMINISM_SCAN_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix not in (".cpp", ".hpp"):
                    continue
                raw = path.read_text(encoding="utf-8")
                rel = str(path.relative_to(self.root))
                for lineno, reason in self._determinism_annotations(raw):
                    live.add((rel, reason))
                    if (rel, reason) not in declared:
                        self.report(
                            path, lineno, "determinism-hygiene",
                            "`determinism: allow` annotation has no matching "
                            f"(file, reason) entry in {DETERMINISM_MANIFEST}")
        for rel, reason in sorted(declared - live):
            self.report(manifest_path, 1, "determinism-hygiene",
                        f"stale suppression for {rel}: no live `determinism: "
                        f"allow` annotation with reason \"{reason}\"")

    def _balanced_annotations(self, raw: str,
                              token: str) -> list[tuple[int, str]]:
        """(line, whitespace-collapsed reason) for every ``<token><reason>)``
        in ``raw``; the reason may wrap across comment lines and ends at the
        balanced closing parenthesis."""
        out = []
        pos = 0
        while True:
            start = raw.find(token, pos)
            if start < 0:
                return out
            open_paren = start + len(token) - 1
            depth, i = 0, open_paren
            while i < len(raw):
                if raw[i] == "(":
                    depth += 1
                elif raw[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            reason = re.sub(r"\n\s*//+", " ", raw[open_paren + 1:i])
            out.append((raw.count("\n", 0, start) + 1,
                        " ".join(reason.split())))
            pos = i + 1

    def _packet_enumerators(self) -> list[str] | None:
        """The sim::PacketType enumerator names, or None when the header is
        missing (already reported)."""
        hpp = self.root / PACKET_HPP
        if not hpp.is_file():
            self.report(hpp, 1, "protocol-hygiene",
                        "PacketType header is missing; update PACKET_HPP in "
                        "tools/lint.py")
            return None
        code = strip_comments_and_strings(hpp.read_text(encoding="utf-8"))
        m = re.search(r"enum\s+class\s+PacketType\s*\{([^}]*)\}", code)
        if not m:
            self.report(hpp, 1, "protocol-hygiene",
                        "enum class PacketType not found")
            return None
        return re.findall(r"\bk\w+\b", m.group(1))

    def _packet_wire_names(self) -> list[str] | None:
        """The wire names to_string(PacketType) can produce — the tag values
        of the per-type net.tx.* counters."""
        cpp = self.root / PACKET_CPP
        if not cpp.is_file():
            self.report(cpp, 1, "obs-hygiene",
                        "PacketType to_string source is missing; update "
                        "PACKET_CPP in tools/lint.py")
            return None
        text = strip_comments(cpp.read_text(encoding="utf-8"))
        names = re.findall(
            r'case\s+(?:sim\s*::\s*)?PacketType\s*::\s*k\w+\s*:\s*'
            r'return\s+"([^"]+)"', text)
        if not names:
            self.report(cpp, 1, "obs-hygiene",
                        "no PacketType to_string cases found")
            return None
        return names

    def check_protocol_hygiene(self):
        manifest_path = self.root / PROTOCOL_MANIFEST
        if not manifest_path.is_file():
            self.report(manifest_path, 1, "protocol-hygiene",
                        "protocol suppression manifest is missing")
            return
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as err:
            self.report(manifest_path, getattr(err, "lineno", 1),
                        "protocol-hygiene",
                        f"manifest is not valid JSON: {err}")
            return

        declared: set[tuple[str, str]] = set()
        for entry in manifest.get("suppressions", []):
            rule = entry.get("rule", "")
            if rule not in PROTOCOL_RULES:
                self.report(manifest_path, 1, "protocol-hygiene",
                            f"unknown protocol rule '{rule}' (expected one "
                            f"of {', '.join(PROTOCOL_RULES)})")
                continue
            rel, reason = entry.get("file", ""), entry.get("reason", "")
            if not rel or not reason.strip():
                self.report(manifest_path, 1, "protocol-hygiene",
                            "suppression entry needs non-empty 'file', "
                            "'rule' and 'reason'")
                continue
            declared.add((rel, " ".join(reason.split())))
        for entry in manifest.get("fire_and_forget", []):
            rel, reason = entry.get("file", ""), entry.get("reason", "")
            if not rel or not reason.strip():
                self.report(manifest_path, 1, "protocol-hygiene",
                            "fire_and_forget entry needs non-empty 'file' "
                            "and 'reason'")
                continue
            declared.add((rel, " ".join(reason.split())))

        live: set[tuple[str, str]] = set()
        for d in PROTOCOL_SCAN_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix not in (".cpp", ".hpp"):
                    continue
                raw = path.read_text(encoding="utf-8")
                rel = str(path.relative_to(self.root))
                for token in PROTOCOL_TOKENS:
                    for lineno, reason in self._balanced_annotations(raw,
                                                                     token):
                        live.add((rel, reason))
                        if (rel, reason) not in declared:
                            self.report(
                                path, lineno, "protocol-hygiene",
                                f"`{token.rstrip('(')}` annotation has no "
                                "matching (file, reason) entry in "
                                f"{PROTOCOL_MANIFEST}")
        for rel, reason in sorted(declared - live):
            self.report(manifest_path, 1, "protocol-hygiene",
                        f"stale suppression for {rel}: no live `protocol:` "
                        f"annotation with reason \"{reason}\"")

        enums = self._packet_enumerators()
        if enums is not None:
            for entry in manifest.get("unpaired_types", []):
                t = entry.get("type", "")
                if t not in enums:
                    self.report(manifest_path, 1, "protocol-hygiene",
                                f"unpaired_types names '{t}', which is not a "
                                f"sim::PacketType enumerator in {PACKET_HPP}")

    def check_hot_paths(self):
        for rel, funcs in HOT_PATH_FUNCS.items():
            path = self.root / rel
            if not path.is_file():
                self.report(path, 1, "hot-path-alloc",
                            "file listed in HOT_PATH_FUNCS is missing")
                continue
            raw_lines = path.read_text(encoding="utf-8").splitlines()
            code = strip_comments_and_strings("\n".join(raw_lines))
            for name in funcs:
                found = False
                for start_line, body in function_bodies(code, name):
                    found = True
                    for off, line in enumerate(body.splitlines()):
                        lineno = start_line + off
                        hit = None
                        if HOT_VECTOR_RE.search(line):
                            hit = "std::vector constructed"
                        else:
                            m = HOT_ALLOC_CALL_RE.search(line)
                            if m:
                                hit = f"allocating call {m.group(1)}()"
                        if hit is None:
                            continue
                        # A deliberate exception is annotated on the same or
                        # the immediately preceding source line.
                        annotated = any(
                            0 < ln <= len(raw_lines) and
                            HOT_ALLOW_RE.search(raw_lines[ln - 1])
                            for ln in (lineno, lineno - 1))
                        if annotated:
                            continue
                        self.report(
                            path, lineno, "hot-path-alloc",
                            f"{hit} in hot path {name}(); reuse a scratch "
                            "buffer, or annotate the line with "
                            "`// hot-path: allow(<why>)`")
                if not found:
                    self.report(path, 1, "hot-path-alloc",
                                f"no definition of {name}() found; update "
                                "HOT_PATH_FUNCS in tools/lint.py")

    def _registered_invariants(self) -> list[str] | None:
        """The string values of the constants listed in kInvariantIds."""
        hpp = self.root / VERIFY_INVARIANTS_HPP
        if not hpp.is_file():
            self.report(hpp, 1, "verify-hygiene",
                        "invariants header is missing")
            return None
        text = hpp.read_text(encoding="utf-8")
        values = dict(re.findall(
            r'constexpr\s+const\s+char\*\s+(k\w+)\s*=\s*"([^"]+)"', text))
        block = re.search(r"kInvariantIds\[\]\s*=\s*\{([^}]*)\}", text)
        if not block:
            self.report(hpp, 1, "verify-hygiene",
                        "kInvariantIds[] not found")
            return None
        names = re.findall(r"k\w+", block.group(1))
        missing = [n for n in names if n not in values]
        if missing:
            self.report(hpp, 1, "verify-hygiene",
                        f"kInvariantIds entries without a string value: "
                        f"{missing}")
        return [values[n] for n in names if n in values]

    # ---- driver ----------------------------------------------------------

    def run(self) -> int:
        src = self.root / "src"
        all_dirs = [src, self.root / "tests", self.root / "bench",
                    self.root / "examples"]
        # The linter-fixture miniature repositories are deliberately not real
        # code (unresolvable includes, injected violations); their linting is
        # done by the fixture tests themselves.
        fixtures = self.root / "tests" / "tools" / "fixtures"
        for d in all_dirs:
            for path in sorted(d.rglob("*")):
                if path.suffix not in (".cpp", ".hpp"):
                    continue
                if fixtures in path.parents:
                    continue
                raw = path.read_text(encoding="utf-8")
                code = strip_comments_and_strings(raw)
                self.check_includes(path, raw)
                under_src = src in path.parents
                if under_src:
                    self.check_naked_new(path, code)
                    self.check_raw_abort(path, code)
                    if path.suffix == ".cpp":
                        self.check_contracts(path, code)
                if path.suffix == ".hpp":
                    self.check_pragma_once(path, code)
                    self.check_header_using(path, code)
        self.check_verify_hygiene()
        self.check_obs_hygiene()
        self.check_determinism_hygiene()
        self.check_protocol_hygiene()
        self.check_hot_paths()
        for f in self.findings:
            print(f)
        if self.findings:
            print(f"\ntools/lint.py: {len(self.findings)} finding(s)",
                  file=sys.stderr)
            return 1
        print("tools/lint.py: clean")
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=pathlib.Path(__file__).resolve().parent.parent,
                    type=pathlib.Path, help="repository root")
    args = ap.parse_args()
    return Linter(args.root.resolve()).run()


if __name__ == "__main__":
    sys.exit(main())
