#!/usr/bin/env python3
"""Repo-specific lint rules clang-tidy cannot express.

Rules (each failure prints ``file:line: rule-id: message``):

  contracts        every src/**/*.cpp translation unit guards its public
                   entry points with SCMP_EXPECTS/SCMP_ENSURES/SCMP_ASSERT
                   (files with genuinely precondition-free APIs are
                   allowlisted below, with justification).
  include-paths    quoted includes are src/-rooted module paths
                   ("core/dcdm.hpp"), never relative ("../x.hpp") or bare
                   filenames, and must resolve to a tracked file.
  no-naked-new     no `new` / `delete` expressions in src/ — ownership goes
                   through std::unique_ptr / containers.
  no-raw-abort     std::abort/exit/_Exit only inside util/contracts.hpp;
                   everything else fails through the contract macros so the
                   diagnostic names the violated condition.
  pragma-once      every header starts include-guarding with #pragma once.
  header-using     no `using namespace` at namespace scope in headers.

Usage: tools/lint.py [--root REPO_ROOT]
Exits non-zero when any finding is reported.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Translation units whose public API has no checkable preconditions.
NO_CONTRACT_OK = {
    "src/sim/packet.cpp",   # enum-to-string formatters only
    "src/sim/trace.cpp",    # passive recorder; accepts any packet stream
}

# Local convenience headers test/bench sources may include unqualified.
LOCAL_INCLUDE_OK = {"helpers.hpp", "bench_common.hpp"}

CONTRACT_RE = re.compile(r"\bSCMP_(EXPECTS|ENSURES|ASSERT)\s*\(")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
NEW_RE = re.compile(r"\bnew\b\s*(?:\(|\[|[A-Za-z_:<])")
DELETE_RE = re.compile(r"(?<![=\w])\s*\bdelete\b\s*(?:\[\s*\])?\s*[A-Za-z_(*]")
ABORT_RE = re.compile(r"\b(?:std\s*::\s*)?(abort|_Exit|quick_exit|exit)\s*\(")
USING_NS_RE = re.compile(r"^\s*using\s+namespace\b")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string literals and char literals, preserving
    line structure so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^()\s]*)\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    i += m.end()
                    continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; bail to keep line numbers sane
                state = "code"
                out.append(c)
        elif state == "raw":
            end = text.find(raw_delim, i)
            if end == -1:
                break
            out.append("\n" * text.count("\n", i, end + len(raw_delim)))
            i = end + len(raw_delim)
            continue
        i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.findings: list[str] = []

    def report(self, path: pathlib.Path, line: int, rule: str, msg: str):
        rel = path.relative_to(self.root)
        self.findings.append(f"{rel}:{line}: {rule}: {msg}")

    # ---- rules -----------------------------------------------------------

    def check_contracts(self, path: pathlib.Path, code: str):
        rel = str(path.relative_to(self.root))
        if rel in NO_CONTRACT_OK:
            if CONTRACT_RE.search(code):
                self.report(path, 1, "contracts",
                            "file uses contracts; drop it from NO_CONTRACT_OK")
            return
        if not CONTRACT_RE.search(code):
            self.report(
                path, 1, "contracts",
                "no SCMP_EXPECTS/SCMP_ENSURES/SCMP_ASSERT in this translation "
                "unit; guard its public entry points (or allowlist it in "
                "tools/lint.py with a justification)")

    def check_includes(self, path: pathlib.Path, raw: str):
        in_tests = "tests/" in str(path.relative_to(self.root)) or \
                   "bench/" in str(path.relative_to(self.root))
        for lineno, line in enumerate(raw.splitlines(), 1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            inc = m.group(1)
            if ".." in inc.split("/"):
                self.report(path, lineno, "include-paths",
                            f'relative include "{inc}"; use a src/-rooted '
                            'module path')
                continue
            if inc in LOCAL_INCLUDE_OK and in_tests:
                continue
            if "/" not in inc:
                self.report(path, lineno, "include-paths",
                            f'bare include "{inc}"; use a src/-rooted module '
                            'path like "core/dcdm.hpp"')
                continue
            if not (self.root / "src" / inc).is_file():
                self.report(path, lineno, "include-paths",
                            f'include "{inc}" does not resolve under src/')

    def check_naked_new(self, path: pathlib.Path, code: str):
        for lineno, line in enumerate(code.splitlines(), 1):
            if NEW_RE.search(line):
                self.report(path, lineno, "no-naked-new",
                            "`new` expression; use std::make_unique or a "
                            "container")
            if DELETE_RE.search(line):
                self.report(path, lineno, "no-naked-new",
                            "`delete` expression; ownership must be RAII")

    def check_raw_abort(self, path: pathlib.Path, code: str):
        if path.name == "contracts.hpp":
            return
        for lineno, line in enumerate(code.splitlines(), 1):
            m = ABORT_RE.search(line)
            if m:
                self.report(path, lineno, "no-raw-abort",
                            f"direct {m.group(1)}() call; fail through "
                            "SCMP_EXPECTS/SCMP_ASSERT so the diagnostic names "
                            "the condition")

    def check_pragma_once(self, path: pathlib.Path, code: str):
        for line in code.splitlines():
            s = line.strip()
            if not s:
                continue
            if s == "#pragma once":
                return
            self.report(path, 1, "pragma-once",
                        "header must start with #pragma once")
            return
        # empty header: fine

    def check_header_using(self, path: pathlib.Path, code: str):
        for lineno, line in enumerate(code.splitlines(), 1):
            if USING_NS_RE.match(line):
                self.report(path, lineno, "header-using",
                            "`using namespace` in a header leaks into every "
                            "includer")

    # ---- driver ----------------------------------------------------------

    def run(self) -> int:
        src = self.root / "src"
        all_dirs = [src, self.root / "tests", self.root / "bench",
                    self.root / "examples"]
        for d in all_dirs:
            for path in sorted(d.rglob("*")):
                if path.suffix not in (".cpp", ".hpp"):
                    continue
                raw = path.read_text(encoding="utf-8")
                code = strip_comments_and_strings(raw)
                self.check_includes(path, raw)
                under_src = src in path.parents
                if under_src:
                    self.check_naked_new(path, code)
                    self.check_raw_abort(path, code)
                    if path.suffix == ".cpp":
                        self.check_contracts(path, code)
                if path.suffix == ".hpp":
                    self.check_pragma_once(path, code)
                    self.check_header_using(path, code)
        for f in self.findings:
            print(f)
        if self.findings:
            print(f"\ntools/lint.py: {len(self.findings)} finding(s)",
                  file=sys.stderr)
            return 1
        print("tools/lint.py: clean")
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=pathlib.Path(__file__).resolve().parent.parent,
                    type=pathlib.Path, help="repository root")
    args = ap.parse_args()
    return Linter(args.root.resolve()).run()


if __name__ == "__main__":
    sys.exit(main())
