#!/usr/bin/env python3
"""Merges one run's observability artifacts into a single markdown report.

Discovers, in the given directory (all kinds optional, any combination):

  BENCH_*.json         scmp-bench-v1 bench statistics (bench/ --json)
  *.prom               Prometheus metric snapshots (--metrics)
  *timeseries*.jsonl   scmp-timeseries-v1 metric time series (--timeseries)
  *flight*.jsonl       causal flight-recorder records (--flight)

and writes one markdown document: bench tables, the metrics snapshot with a
dedicated convergence section, a time-series digest, and flight-recorder
statistics including a reconstructed JOIN -> installed causal chain. CI's
bench-smoke job publishes the result as a build artifact.

Usage: tools/obs_report.py DIR [-o REPORT.md]
(default output is stdout)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$")


def fmt(v) -> str:
    """Compact numeric formatting for markdown cells."""
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def table(headers: list[str], rows: list[list[str]]) -> list[str]:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join(" --- " for _ in headers) + "|"]
    out.extend("| " + " | ".join(r) + " |" for r in rows)
    return out


# ---- bench JSON ------------------------------------------------------------


def bench_section(files: list[pathlib.Path]) -> list[str]:
    out = ["## Benchmarks", ""]
    for path in files:
        doc = json.loads(path.read_text(encoding="utf-8"))
        out.append(f"### {doc.get('bench', path.name)}")
        out.append("")
        rows = [[p["series"], fmt(p["x"]), fmt(p["count"]), fmt(p["mean"]),
                 fmt(p["p50"]), fmt(p["p95"]), fmt(p["p99"])]
                for p in doc.get("points", [])]
        out.extend(table(["series", "x", "count", "mean", "p50", "p95",
                          "p99"], rows))
        out.append("")
    return out


# ---- Prometheus snapshots --------------------------------------------------


def parse_prom(path: pathlib.Path) -> dict[str, dict]:
    """family name -> {"type": str, "samples": [(name, labels, value)]}."""
    families: dict[str, dict] = {}
    current = None
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                current = parts[2]
                families[current] = {"type": parts[3], "samples": []}
            continue
        m = PROM_SAMPLE_RE.match(line)
        if m is None:
            continue
        name, labels, value = m.group("name"), m.group("labels"), \
            m.group("value")
        family = current if current and name.startswith(current) else name
        families.setdefault(family, {"type": "untyped", "samples": []})
        families[family]["samples"].append((name, labels or "", float(value)))
    return families


def label_get(labels: str, key: str) -> str:
    m = re.search(rf'{key}="([^"]*)"', labels)
    return m.group(1) if m else ""


def metrics_section(files: list[pathlib.Path]) -> list[str]:
    out = ["## Metrics", ""]
    for path in files:
        families = parse_prom(path)
        out.append(f"### {path.name}")
        out.append("")
        rows = []
        for family in sorted(families):
            info = families[family]
            if "convergence" in family:
                continue  # gets its own section below
            if info["type"] == "summary":
                count = sum(v for n, _, v in info["samples"]
                            if n.endswith("_count"))
                p = {label_get(l, "quantile"): v
                     for n, l, v in info["samples"] if "quantile" in l}
                rows.append([family, "summary",
                             f"n={fmt(int(count))} p50={fmt(p.get('0.5'))} "
                             f"p95={fmt(p.get('0.95'))} "
                             f"p99={fmt(p.get('0.99'))}"])
                continue
            for name, labels, value in info["samples"]:
                if value == 0:
                    continue  # zero-valued tags only add noise
                tag = label_get(labels, "tag")
                shown = f"{family}{{{tag}}}" if tag else family
                rows.append([shown, info["type"], fmt(value)])
        out.extend(table(["metric", "type", "value"], rows))
        out.append("")
    return out


def convergence_section(files: list[pathlib.Path]) -> list[str]:
    out = ["## Convergence", ""]
    rows = []
    for path in files:
        for family, info in sorted(parse_prom(path).items()):
            if "convergence" not in family:
                continue
            if info["type"] == "summary":
                by_tag: dict[str, dict] = {}
                for name, labels, value in info["samples"]:
                    entry = by_tag.setdefault(label_get(labels, "tag"), {})
                    if name.endswith("_count"):
                        entry["count"] = value
                    elif name.endswith("_sum"):
                        entry["sum"] = value
                    elif "quantile" in labels:
                        entry[label_get(labels, "quantile")] = value
                for tag, e in sorted(by_tag.items()):
                    rows.append([f"{family}{{{tag}}}",
                                 fmt(int(e.get("count", 0))),
                                 fmt(e.get("0.5")), fmt(e.get("0.95")),
                                 fmt(e.get("0.99"))])
            else:
                for name, labels, value in info["samples"]:
                    tag = label_get(labels, "tag")
                    shown = f"{family}{{{tag}}}" if tag else family
                    rows.append([shown, fmt(value), "-", "-", "-"])
    if not rows:
        return []
    out.extend(table(["metric", "count/value", "p50", "p95", "p99"], rows))
    out.append("")
    return out


# ---- time-series streams ---------------------------------------------------


def timeseries_section(files: list[pathlib.Path]) -> list[str]:
    out = ["## Time series", ""]
    for path in files:
        lines = path.read_text(encoding="utf-8").splitlines()
        if not lines:
            continue
        header = json.loads(lines[0])
        windows = [json.loads(line) for line in lines[1:]]
        runs: dict[int, list[dict]] = {}
        for w in windows:
            runs.setdefault(w["run"], []).append(w)
        out.append(f"### {path.name}")
        out.append("")
        out.append(f"interval {fmt(header.get('interval'))} s, "
                   f"{len(windows)} window(s), {len(runs)} run(s)")
        out.append("")
        rows = []
        for run, ws in sorted(runs.items()):
            totals: dict[str, float] = {}
            for w in ws:
                for name, delta in w["counters"].items():
                    totals[name] = totals.get(name, 0) + delta
            top = sorted(totals.items(), key=lambda kv: -kv[1])[:5]
            busiest = ", ".join(f"{n}={fmt(v)}" for n, v in top)
            rows.append([str(run), str(len(ws)),
                         f"{fmt(ws[0]['t'])}..{fmt(ws[-1]['t'])}",
                         busiest or "-"])
        out.extend(table(["run", "windows", "t range (s)",
                          "top counter deltas"], rows))
        out.append("")
    return out


# ---- flight recorder -------------------------------------------------------


def chain_of(records: list[dict], root_req: int) -> list[dict]:
    """Python twin of obs::story_of — fixpoint over the cause links."""
    chain = {root_req}
    grew = True
    while grew:
        grew = False
        for r in records:
            if r["req"] != 0 and r["req"] not in chain \
                    and r["cause"] in chain:
                chain.add(r["req"])
                grew = True
    return [r for r in records
            if r["req"] in chain or (r["req"] == 0 and r["cause"] in chain)]


def flight_section(files: list[pathlib.Path]) -> list[str]:
    out = ["## Flight recorder", ""]
    for path in files:
        records = [json.loads(line) for line in
                   path.read_text(encoding="utf-8").splitlines() if line]
        out.append(f"### {path.name}")
        out.append("")
        by_kind: dict[str, int] = {}
        for r in records:
            by_kind[r["kind"]] = by_kind.get(r["kind"], 0) + 1
        out.extend(table(["kind", "records"],
                         [[k, str(n)] for k, n in sorted(by_kind.items())]))
        out.append("")

        stories = [r for r in records
                   if r["kind"] == "handle" and r["what"] == "JOIN"
                   and r["req"] != 0]
        shown = None
        complete = 0
        for root in stories:
            chain = chain_of(records, root["req"])
            if any(r["kind"] == "installed" for r in chain):
                complete += 1
                if shown is None:
                    shown = chain
        out.append(f"{len(stories)} JOIN story(ies), {complete} complete "
                   "JOIN -> installed chain(s)")
        out.append("")
        if shown is not None:
            out.append("First complete chain:")
            out.append("")
            rows = [[fmt(r["t"]), r["kind"], r["what"], str(r["req"]),
                     str(r["cause"]), str(r["group"]), str(r["from"]),
                     str(r["to"])] for r in shown]
            out.extend(table(["t (s)", "kind", "what", "req", "cause",
                              "group", "from", "to"], rows))
            out.append("")
    return out


# ---- main ------------------------------------------------------------------


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        description="Merge observability artifacts into a markdown report.")
    ap.add_argument("dir", help="directory holding the artifacts")
    ap.add_argument("-o", "--out", help="output file (default stdout)")
    args = ap.parse_args(argv)

    root = pathlib.Path(args.dir)
    if not root.is_dir():
        print(f"{args.dir}: not a directory", file=sys.stderr)
        return 2
    bench = sorted(root.glob("BENCH_*.json"))
    prom = sorted(root.glob("*.prom"))
    timeseries = sorted(root.glob("*timeseries*.jsonl"))
    flight = sorted(p for p in root.glob("*flight*.jsonl"))

    lines = ["# Observability report", ""]
    inventory = [f"- `{p.name}`" for p in bench + prom + timeseries + flight]
    if not inventory:
        print(f"{args.dir}: no observability artifacts found",
              file=sys.stderr)
        return 1
    lines.extend(["Inputs:", ""] + inventory + [""])
    if bench:
        lines.extend(bench_section(bench))
    if prom:
        lines.extend(metrics_section(prom))
        lines.extend(convergence_section(prom))
    if timeseries:
        lines.extend(timeseries_section(timeseries))
    if flight:
        lines.extend(flight_section(flight))

    text = "\n".join(lines).rstrip() + "\n"
    if args.out:
        pathlib.Path(args.out).write_text(text, encoding="utf-8")
        print(f"obs_report.py: wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
