#!/usr/bin/env python3
"""Diffs two directories of scmp-bench-v1 BENCH_*.json files.

Usage:
  tools/bench_diff.py BASELINE_DIR CANDIDATE_DIR [--threshold PCT]
                      [--fail-on-missing]

For every (bench, series, x) point present in both directories the tool
prints the mean-per-iteration delta as a percentage of the baseline
(negative = candidate faster). Points slower than ``--threshold`` percent
(default 25, generous because CI runners are noisy and benches run one
repetition) are flagged as regressions and make the exit status non-zero,
so a perf regression fails the build instead of drifting in silently.

Series present on only one side are reported informally (new benches appear,
retired ones disappear); ``--fail-on-missing`` turns a series that vanished
from the candidate into a hard failure.

The committed reference lives in bench/baseline/ and is refreshed in the
same PR as any intentional perf change; CI's bench-smoke job diffs its
freshly-emitted files against it (see docs/performance.md).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_means(dir_path: pathlib.Path) -> dict[tuple[str, str, float], float]:
    """(bench, series, x) -> mean seconds/iteration, for every valid point."""
    means: dict[tuple[str, str, float], float] = {}
    for path in sorted(dir_path.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"{path}: unreadable or invalid JSON: {exc}")
        if doc.get("schema") != "scmp-bench-v1":
            raise SystemExit(f"{path}: not a scmp-bench-v1 file")
        bench = doc.get("bench", path.stem)
        for p in doc.get("points", []):
            mean = p.get("mean")
            if isinstance(mean, (int, float)) and not isinstance(mean, bool) \
                    and mean > 0:
                means[(bench, p["series"], float(p["x"]))] = float(mean)
    return means


def fmt_key(key: tuple[str, str, float]) -> str:
    bench, series, x = key
    return f"{bench}:{series}" + (f"@x={x:g}" if x else "")


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        description="Compare two directories of BENCH_*.json files.")
    ap.add_argument("baseline", type=pathlib.Path)
    ap.add_argument("candidate", type=pathlib.Path)
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="slowdown percent considered a regression "
                         "(default: %(default)s)")
    ap.add_argument("--fail-on-missing", action="store_true",
                    help="fail when a baseline series is absent from the "
                         "candidate")
    args = ap.parse_args(argv)

    for d in (args.baseline, args.candidate):
        if not d.is_dir():
            print(f"bench_diff.py: {d} is not a directory", file=sys.stderr)
            return 2

    base = load_means(args.baseline)
    cand = load_means(args.candidate)
    if not base:
        print(f"bench_diff.py: no BENCH_*.json in {args.baseline}",
              file=sys.stderr)
        return 2
    if not cand:
        print(f"bench_diff.py: no BENCH_*.json in {args.candidate}",
              file=sys.stderr)
        return 2

    common = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    regressions: list[str] = []
    print(f"{'metric':60} {'baseline':>12} {'candidate':>12} {'delta':>9}")
    for key in common:
        b, c = base[key], cand[key]
        delta_pct = (c - b) / b * 100.0
        marker = ""
        if delta_pct > args.threshold:
            marker = "  REGRESSION"
            regressions.append(
                f"{fmt_key(key)}: {delta_pct:+.1f}% "
                f"(threshold {args.threshold:g}%)")
        print(f"{fmt_key(key):60} {b:12.3e} {c:12.3e} "
              f"{delta_pct:+8.1f}%{marker}")

    for key in only_cand:
        print(f"{fmt_key(key):60} {'--':>12} {cand[key]:12.3e}      new")
    for key in only_base:
        print(f"{fmt_key(key):60} {base[key]:12.3e} {'--':>12}  missing")

    if only_base and args.fail_on_missing:
        for key in only_base:
            regressions.append(f"{fmt_key(key)}: missing from candidate")

    if regressions:
        print(f"\nbench_diff.py: {len(regressions)} regression(s):",
              file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(f"\nbench_diff.py: {len(common)} point(s) compared, "
          f"no regression beyond {args.threshold:g}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
