#!/usr/bin/env python3
"""Protocol-flow and architecture linter for the SCMP stack.

The control plane is a fixed packet grammar (JOIN/LEAVE/TREE/BRANCH/PRUNE/
CLEAR/ACK, paper §III) dispatched by hand-written switches, and the PR-5
reliability machinery only protects the send sites that were routed through
it. Both properties rot silently: a new PacketType compiles fine while no
handler matches it, and a new `net().send_*` call quietly bypasses the
retransmission table. This linter extracts the full send→handle graph over
``sim::PacketType`` from the sources and enforces four rule classes:

  dispatch-exhaustiveness
      Every ``switch`` whose cases name ``PacketType`` enumerators (the
      protocol dispatch switches in src/core and src/protocols) must either
      cover every enumerator of the enum explicitly, or carry a ``default:``
      that *asserts* (SCMP_ASSERT / contract_failure) or *counts a drop*
      (a ``drops``-named counter increment or a ``net.drops.*`` metric).
      A default that silently falls through — empty, bare ``break``/
      ``return`` — swallows unexpected packets invisibly.

  handler-coverage
      A packet type *sent* somewhere (``x.type = PacketType::kFoo``) must be
      *received* somewhere — matched by a ``case`` or an ``==`` comparison
      inside a function whose name contains ``handle`` — and vice versa.
      With the real enum available (src/sim/packet.hpp under --root), an
      enumerator that is neither sent nor received is also flagged: dead
      wire types hide grammar drift. Legitimately unpaired types (reserved
      wire numbers) are declared in the manifest's ``unpaired_types``.

  reliability-coverage
      Every raw network send (``net().send_link/send_unicast/inject``) in a
      ``core/`` source must either sit in a function that arms the
      retransmission table (contains a ``.arm(`` call — the reliable-send
      wrappers), or carry a reviewed ``protocol: fire-and-forget(<reason>)``
      annotation (data traffic, and the ACKs that terminate the reliability
      handshake itself). New SCMP control send sites therefore cannot
      silently bypass PR-5 reliability.

  layer-dag
      tools/layers.json declares the module layering of src/ (util → obs →
      graph → topo/fabric → sim → igmp → protocols → core → verify). An
      ``#include`` from a lower layer into a higher one (or across modules
      within one layer) is a back edge and fails; the extracted file-level
      include graph is additionally checked for cycles. Reviewed exceptions
      live in the manifest's ``layer_exceptions``.

Suppressions: a true-but-reviewed finding is silenced with an annotation —
``// protocol: allow(<reason>)`` for dispatch-exhaustiveness, ``// protocol:
fire-and-forget(<reason>)`` for reliability-coverage — trailing on the
flagged line or in the comment block immediately above it (the reason may
wrap; it ends at the balanced closing parenthesis). Every annotation must
also appear in tools/protocol_manifest.json with the same (file, reason),
every ``unpaired_types`` / ``layer_exceptions`` entry must still match a
live unpaired type / include edge, and drift in either direction is itself
a finding. tools/lint.py's protocol-hygiene rule re-checks the
annotation<->manifest correspondence tree-wide.

Function boundaries are recovered from the repo's clang-format layout: a
top-level definition starts at column 0, so the region between consecutive
column-0 declarations approximates one function body. This is exact for the
formatted tree and good enough for the fixture mini-repos.

Usage: tools/protocol_lint.py [--root ROOT] [--manifest FILE]
                              [--layers FILE] [--scan DIR ...]
                              [--only RULE[,RULE...]]
Exits non-zero when any finding is reported.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from lint import strip_comments_and_strings  # noqa: E402

DEFAULT_SCAN_DIRS = ("src/core", "src/protocols")
DEFAULT_MANIFEST = "tools/protocol_manifest.json"
DEFAULT_LAYERS = "tools/layers.json"
PACKET_ENUM_HPP = "src/sim/packet.hpp"

RULES = ("dispatch-exhaustiveness", "handler-coverage",
         "reliability-coverage", "layer-dag")

ALLOW_TOKEN = "protocol: allow("
FNF_TOKEN = "protocol: fire-and-forget("

CASE_RE = re.compile(r"\bcase\s+(?:sim\s*::\s*)?PacketType\s*::\s*(k\w+)")
TYPE_ASSIGN_RE = re.compile(
    r"\.\s*type\s*=\s*(?:sim\s*::\s*)?PacketType\s*::\s*(k\w+)")
TYPE_EQ_RE = re.compile(
    r"(?:==\s*(?:sim\s*::\s*)?PacketType\s*::\s*(k\w+)"
    r"|(?:sim\s*::\s*)?PacketType\s*::\s*(k\w+)\s*==)")
RAW_SEND_RE = re.compile(
    r"\bnet(?:\s*\(\s*\)\s*\.|_\s*->\s*)\s*(send_link|send_unicast|inject)"
    r"\s*\(")
ARM_RE = re.compile(r"[.>]\s*arm\s*\(")
ASSERT_RE = re.compile(r"\bSCMP_(?:ASSERT|EXPECTS|ENSURES)\s*\(|"
                       r"\bcontract_failure\s*\(")
DROP_COUNT_RE = re.compile(r"\b\w*drops?\w*\s*\.\s*inc\s*\(|"
                           r"\bdrop_unexpected\s*\(")
DROP_NAME_RE = re.compile(r"net\.drops\.")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def collapse_ws(text: str) -> str:
    return " ".join(text.split())


class Annotation:
    """One ``protocol: allow(...)`` / ``protocol: fire-and-forget(...)``."""

    def __init__(self, kind: str, line: int, end_line: int, reason: str):
        self.kind = kind          # "allow" | "fire-and-forget"
        self.line = line          # line the token starts on (1-based)
        self.end_line = end_line  # line the balanced ')' closes on
        self.reason = collapse_ws(reason)
        self.used = False


def collect_annotations(raw: str) -> list[Annotation]:
    out = []
    for kind, token in (("allow", ALLOW_TOKEN),
                        ("fire-and-forget", FNF_TOKEN)):
        pos = 0
        while True:
            start = raw.find(token, pos)
            if start < 0:
                break
            open_paren = start + len(token) - 1
            depth, i = 0, open_paren
            while i < len(raw):
                if raw[i] == "(":
                    depth += 1
                elif raw[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            reason = re.sub(r"\n\s*//+", " ", raw[open_paren + 1:i])
            out.append(Annotation(kind, raw.count("\n", 0, start) + 1,
                                  raw.count("\n", 0, i) + 1, reason))
            pos = i + 1
    return out


def balanced_region(code: str, start: int, open_c: str, close_c: str) -> int:
    """Index just past the ``close_c`` matching the ``open_c`` at ``start``."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == open_c:
            depth += 1
        elif code[i] == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


class SourceFile:
    def __init__(self, root: pathlib.Path, path: pathlib.Path):
        self.path = path
        self.rel = str(path.relative_to(root))
        self.raw = path.read_text(encoding="utf-8")
        self.raw_lines = self.raw.splitlines()
        self.code = strip_comments_and_strings(self.raw)
        self.code_lines = self.code.splitlines()
        self.annotations = collect_annotations(self.raw)
        self._regions: list[tuple[int, str]] | None = None

    def annotation_for(self, lineno: int, kind: str) -> Annotation | None:
        """The annotation of ``kind`` covering ``lineno``: trailing on the
        line itself, or closing on the immediately preceding line."""
        for a in self.annotations:
            if a.kind != kind:
                continue
            if a.line <= lineno <= a.end_line or a.end_line == lineno - 1:
                return a
        return None

    def regions(self) -> list[tuple[int, str]]:
        """(start_line, header) of every top-level definition region: a
        column-0 line starting with a letter opens a region that runs to the
        next such line (clang-format puts every function definition, and
        nothing inside one, at column 0)."""
        if self._regions is None:
            self._regions = []
            for lineno, line in enumerate(self.code_lines, 1):
                if line and (line[0].isalpha() or line[0] == "_"):
                    self._regions.append((lineno, line.strip()))
        return self._regions

    def region_of(self, lineno: int) -> tuple[int, int, str]:
        """(start_line, end_line, header) of the region containing lineno."""
        regions = self.regions()
        start, header = 1, ""
        end = len(self.code_lines)
        for i, (rl, h) in enumerate(regions):
            if rl > lineno:
                end = rl - 1
                break
            start, header = rl, h
        else:
            end = len(self.code_lines)
        return start, end, header

    def region_text(self, lineno: int) -> str:
        start, end, _ = self.region_of(lineno)
        return "\n".join(self.code_lines[start - 1:end])

    def region_name(self, lineno: int) -> str:
        """The (possibly qualified) function name of the region's header,
        following it across the continuation lines clang-format may wrap a
        long signature onto."""
        start, end, header = self.region_of(lineno)
        text = header
        for extra in self.code_lines[start:min(start + 3, end)]:
            text += " " + extra.strip()
        m = re.search(r"([\w:~]+)\s*\(", text)
        return m.group(1) if m else ""


def parse_packet_enum(root: pathlib.Path) -> list[str] | None:
    """PacketType enumerators from src/sim/packet.hpp, or None when the
    header is not part of the scanned tree (fixture mini-repos)."""
    hpp = root / PACKET_ENUM_HPP
    if not hpp.is_file():
        return None
    code = strip_comments_and_strings(hpp.read_text(encoding="utf-8"))
    m = re.search(r"enum\s+class\s+PacketType\s*\{", code)
    if not m:
        return None
    body = code[m.end():balanced_region(code, m.end() - 1, "{", "}") - 1]
    return re.findall(r"\b(k\w+)\b", body)


class ProtocolLinter:
    def __init__(self, root: pathlib.Path, manifest_path: pathlib.Path,
                 layers_path: pathlib.Path, scan_dirs: list[str],
                 only: set[str]):
        self.root = root
        self.manifest_path = manifest_path
        self.layers_path = layers_path
        self.scan_dirs = scan_dirs
        self.only = only
        self.findings: list[str] = []
        self.files: list[SourceFile] = []
        self.enum = parse_packet_enum(root)
        # type -> (rel, line) of one witness occurrence.
        self.sent: dict[str, tuple[str, int]] = {}
        self.received: dict[str, tuple[str, int]] = {}
        # manifest usage tracking
        self.used_suppressions: set[tuple[str, str, str]] = set()
        self.used_unpaired: set[str] = set()
        self.used_exceptions: set[tuple[str, str]] = set()
        self.declared_unpaired: dict[str, str] = {}
        self.declared_exceptions: set[tuple[str, str]] = set()

    def enabled(self, rule: str) -> bool:
        return not self.only or rule in self.only

    def report(self, rel: str, line: int, rule: str, msg: str):
        self.findings.append(f"{rel}:{line}: {rule}: {msg}")

    # ---- collection ------------------------------------------------------

    def load(self):
        for d in self.scan_dirs:
            base = self.root / d
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in (".cpp", ".hpp"):
                    self.files.append(SourceFile(self.root, path))
        self.load_manifest()

    def load_manifest(self):
        self.manifest_ok = False
        self.manifest = {}
        try:
            self.manifest = json.loads(
                self.manifest_path.read_text(encoding="utf-8"))
            self.manifest_ok = True
        except FileNotFoundError:
            self.findings.append(
                f"{self.manifest_path}:1: manifest: protocol manifest is "
                "missing; every suppression must be declared")
        except json.JSONDecodeError as err:
            self.findings.append(
                f"{self.manifest_path}:{getattr(err, 'lineno', 1)}: "
                f"manifest: not valid JSON: {err}")
        for entry in self.manifest.get("unpaired_types", []):
            t, reason = entry.get("type", ""), entry.get("reason", "")
            if not t or not reason.strip():
                self.findings.append(
                    f"{self.manifest_path}:1: manifest: unpaired_types entry "
                    "needs non-empty 'type' and 'reason'")
                continue
            self.declared_unpaired[t] = collapse_ws(reason)
        for entry in self.manifest.get("layer_exceptions", []):
            f, inc = entry.get("file", ""), entry.get("include", "")
            if not f or not inc or not entry.get("reason", "").strip():
                self.findings.append(
                    f"{self.manifest_path}:1: manifest: layer_exceptions "
                    "entry needs non-empty 'file', 'include' and 'reason'")
                continue
            self.declared_exceptions.add((f, inc))

    # ---- rule 1: dispatch-exhaustiveness ---------------------------------

    def packet_switches(self, f: SourceFile):
        """Yields (line, cases, default_line, default_body) for every switch
        whose cases name PacketType enumerators."""
        for m in re.finditer(r"\bswitch\s*\(", f.code):
            cond_end = balanced_region(f.code, m.end() - 1, "(", ")")
            body_open = f.code.find("{", cond_end)
            if body_open < 0:
                continue
            body_end = balanced_region(f.code, body_open, "{", "}")
            body = f.code[body_open:body_end]
            cases = CASE_RE.findall(body)
            if not cases:
                continue
            line = f.code.count("\n", 0, m.start()) + 1
            dm = re.search(r"\bdefault\s*:", body)
            if dm is None:
                yield line, cases, None, ""
            else:
                default_line = line + body.count("\n", 0, dm.start())
                yield line, cases, default_line, body[dm.end():]

    def check_dispatch(self, f: SourceFile):
        for line, cases, default_line, default_body in self.packet_switches(f):
            if default_line is None:
                if self.enum is None:
                    self.report(
                        f.rel, line, "dispatch-exhaustiveness",
                        "switch over PacketType has no default and the enum "
                        f"({PACKET_ENUM_HPP}) is not in the scanned tree, so "
                        "coverage cannot be verified")
                    continue
                missing = sorted(set(self.enum) - set(cases))
                if missing:
                    self.report(
                        f.rel, line, "dispatch-exhaustiveness",
                        "switch over PacketType has no default and does not "
                        f"cover {', '.join(missing)}; list every type this "
                        "component can receive, and assert or count a drop "
                        "for the rest")
                continue
            raw_default = "\n".join(
                f.raw_lines[default_line - 1:
                            default_line - 1 + default_body.count("\n") + 1])
            handled = (ASSERT_RE.search(default_body) or
                       DROP_COUNT_RE.search(default_body) or
                       DROP_NAME_RE.search(raw_default))
            if handled:
                continue
            ann = f.annotation_for(default_line, "allow")
            if ann is not None:
                ann.used = True
                self.used_suppressions.add(
                    (f.rel, "dispatch-exhaustiveness", ann.reason))
                continue
            self.report(
                f.rel, default_line, "dispatch-exhaustiveness",
                "default of a PacketType dispatch switch silently swallows "
                "unexpected types; SCMP_ASSERT a programming error or count "
                "the drop (net.drops.unexpected_type) and log it")

    # ---- rule 2: handler-coverage ----------------------------------------

    def collect_flow(self, f: SourceFile):
        for lineno, line in enumerate(f.code_lines, 1):
            for t in TYPE_ASSIGN_RE.findall(line):
                self.sent.setdefault(t, (f.rel, lineno))
        in_handler_cache: dict[int, bool] = {}

        def in_handler(lineno: int) -> bool:
            start, _, _ = f.region_of(lineno)
            if start not in in_handler_cache:
                in_handler_cache[start] = \
                    "handle" in f.region_name(lineno).lower()
            return in_handler_cache[start]

        for lineno, line in enumerate(f.code_lines, 1):
            hits = CASE_RE.findall(line)
            for a, b in TYPE_EQ_RE.findall(line):
                hits.append(a or b)
            for t in hits:
                if in_handler(lineno):
                    self.received.setdefault(t, (f.rel, lineno))

    def check_handler_coverage(self):
        for t in sorted(set(self.sent) - set(self.received)):
            if t in self.declared_unpaired:
                self.used_unpaired.add(t)
                continue
            rel, line = self.sent[t]
            self.report(
                rel, line, "handler-coverage",
                f"PacketType::{t} is sent here but no handle* function "
                "matches on it — an orphan packet type; add the receiving "
                "case or declare it in the manifest's unpaired_types")
        for t in sorted(set(self.received) - set(self.sent)):
            if t in self.declared_unpaired:
                self.used_unpaired.add(t)
                continue
            rel, line = self.received[t]
            self.report(
                rel, line, "handler-coverage",
                f"PacketType::{t} is handled here but never sent — a dead "
                "packet type; delete the handler or declare it in the "
                "manifest's unpaired_types")
        if self.enum is not None:
            for t in sorted(set(self.enum) - set(self.sent)
                            - set(self.received)):
                if t in self.declared_unpaired:
                    self.used_unpaired.add(t)
                    continue
                self.report(
                    PACKET_ENUM_HPP, 1, "handler-coverage",
                    f"PacketType::{t} is neither sent nor handled anywhere "
                    "in the protocol sources — a dead wire type; remove it "
                    "or declare it in the manifest's unpaired_types")

    # ---- rule 3: reliability-coverage ------------------------------------

    def check_reliability(self, f: SourceFile):
        if "core/" not in f.rel.replace("\\", "/"):
            return
        for lineno, line in enumerate(f.code_lines, 1):
            m = RAW_SEND_RE.search(line)
            if not m:
                continue
            if ARM_RE.search(f.region_text(lineno)):
                continue  # reliable-send wrapper: the function arms RetxTable
            ann = f.annotation_for(lineno, "fire-and-forget")
            if ann is not None:
                ann.used = True
                self.used_suppressions.add(
                    (f.rel, "reliability-coverage", ann.reason))
                continue
            self.report(
                f.rel, lineno, "reliability-coverage",
                f"raw {m.group(1)}() in core bypasses the retransmission "
                "table; route it through the reliable-send wrappers or "
                "annotate `// protocol: fire-and-forget(<reason>)` and "
                "declare it in the manifest")

    # ---- rule 4: layer-dag -----------------------------------------------

    def check_layers(self):
        try:
            spec = json.loads(self.layers_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.findings.append(
                f"{self.layers_path}:1: layer-dag: layers file is missing")
            return
        except json.JSONDecodeError as err:
            self.findings.append(
                f"{self.layers_path}:{getattr(err, 'lineno', 1)}: "
                f"layer-dag: not valid JSON: {err}")
            return
        level: dict[str, int] = {}
        for i, layer in enumerate(spec.get("layers", [])):
            for module in layer:
                if module in level:
                    self.findings.append(
                        f"{self.layers_path}:1: layer-dag: module "
                        f"'{module}' declared in two layers")
                level[module] = i

        src = self.root / "src"
        if not src.is_dir():
            return
        includes: dict[str, list[tuple[int, str]]] = {}
        for path in sorted(src.rglob("*")):
            if path.suffix not in (".cpp", ".hpp"):
                continue
            rel = path.relative_to(self.root).as_posix()
            edges = []
            for lineno, line in enumerate(
                    path.read_text(encoding="utf-8").splitlines(), 1):
                m = INCLUDE_RE.match(line)
                if m and "/" in m.group(1):
                    edges.append((lineno, m.group(1)))
            includes[rel] = edges
            module = rel.split("/")[1]
            if module not in level:
                self.report(rel, 1, "layer-dag",
                            f"module 'src/{module}' is not declared in "
                            f"{self.layers_path.name}")
        for module in sorted(level):
            if not (src / module).is_dir():
                self.findings.append(
                    f"{self.layers_path}:1: layer-dag: declared module "
                    f"'{module}' has no src/{module}/ directory")

        for rel in sorted(includes):
            module = rel.split("/")[1]
            if module not in level:
                continue
            for lineno, inc in includes[rel]:
                inc_module = inc.split("/")[0]
                if inc_module not in level:
                    continue  # already reported above via its own files
                ok = (inc_module == module or
                      level[inc_module] < level[module])
                if ok:
                    continue
                if (rel, inc) in self.declared_exceptions:
                    self.used_exceptions.add((rel, inc))
                    continue
                kind = ("back edge" if level[inc_module] > level[module]
                        else "cross-module edge within one layer")
                self.report(
                    rel, lineno, "layer-dag",
                    f'#include "{inc}": {kind} — src/{module} (layer '
                    f"{level[module]}) must not depend on src/{inc_module} "
                    f"(layer {level[inc_module]}); invert the dependency or "
                    "declare a reviewed layer_exceptions entry")

        # File-level cycle detection over the quoted-include graph.
        graph = {rel: [f"src/{inc}" for _, inc in edges
                       if (self.root / "src" / inc).is_file()]
                 for rel, edges in includes.items()}
        state: dict[str, int] = {}  # 0 visiting, 1 done
        stack: list[str] = []

        def visit(node: str) -> list[str] | None:
            state[node] = 0
            stack.append(node)
            for nxt in graph.get(node, []):
                if state.get(nxt) == 0:
                    return stack[stack.index(nxt):] + [nxt]
                if nxt not in state:
                    cyc = visit(nxt)
                    if cyc:
                        return cyc
            state[node] = 1
            stack.pop()
            return None

        for rel in sorted(graph):
            if rel not in state:
                cycle = visit(rel)
                if cycle:
                    self.report(cycle[0], 1, "layer-dag",
                                "include cycle: " + " -> ".join(cycle))
                    break

    # ---- suppression manifest cross-check --------------------------------

    def check_manifest(self):
        if not self.manifest_ok:
            return
        name = self.manifest_path.name
        declared: set[tuple[str, str, str]] = set()
        for section, rule in (("suppressions", None),
                              ("fire_and_forget", "reliability-coverage")):
            for entry in self.manifest.get(section, []):
                r = rule or entry.get("rule", "")
                if r not in RULES:
                    self.findings.append(
                        f"{self.manifest_path}:1: manifest: unknown rule "
                        f"'{r}' (expected one of {', '.join(RULES)})")
                    continue
                key = (entry.get("file", ""), r,
                       collapse_ws(entry.get("reason", "")))
                if not key[0] or not key[2]:
                    self.findings.append(
                        f"{self.manifest_path}:1: manifest: entry needs "
                        "non-empty 'file' and 'reason'")
                    continue
                declared.add(key)

        for key in sorted(self.used_suppressions - declared):
            rel, rule, reason = key
            self.findings.append(
                f"{rel}:1: manifest: live suppression not in {name}: "
                f"rule={rule} reason=\"{reason}\"")
        for key in sorted(declared - self.used_suppressions):
            rel, rule, reason = key
            self.findings.append(
                f"{self.manifest_path}:1: manifest: stale entry — no live "
                f"annotation in {rel} suppresses a {rule} finding with "
                f"reason \"{reason}\"")
        for t in sorted(set(self.declared_unpaired) - self.used_unpaired):
            self.findings.append(
                f"{self.manifest_path}:1: manifest: stale unpaired_types "
                f"entry '{t}': the type is paired (or gone); delete the "
                "entry")
        for rel, inc in sorted(self.declared_exceptions -
                               self.used_exceptions):
            self.findings.append(
                f"{self.manifest_path}:1: manifest: stale layer_exceptions "
                f"entry: {rel} no longer includes \"{inc}\" across layers")
        for f in self.files:
            for a in f.annotations:
                if not a.used:
                    self.findings.append(
                        f"{f.rel}:{a.line}: manifest: `protocol: {a.kind}` "
                        "annotation suppresses no finding; delete it (and "
                        "its manifest entry)")

    # ---- driver ----------------------------------------------------------

    def run(self) -> int:
        self.load()
        if self.enabled("dispatch-exhaustiveness"):
            for f in self.files:
                self.check_dispatch(f)
        if self.enabled("handler-coverage"):
            for f in self.files:
                self.collect_flow(f)
            self.check_handler_coverage()
        if self.enabled("reliability-coverage"):
            for f in self.files:
                self.check_reliability(f)
        if self.enabled("layer-dag"):
            self.check_layers()
        if not self.only:
            self.check_manifest()
        for finding in self.findings:
            print(finding)
        if self.findings:
            print(f"\ntools/protocol_lint.py: {len(self.findings)} "
                  "finding(s)", file=sys.stderr)
            return 1
        scope = ",".join(sorted(self.only)) if self.only else "all rules"
        print(f"tools/protocol_lint.py: clean ({scope})")
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root",
                    default=pathlib.Path(__file__).resolve().parent.parent,
                    type=pathlib.Path, help="repository root")
    ap.add_argument("--manifest", type=pathlib.Path, default=None,
                    help=f"suppression manifest (default {DEFAULT_MANIFEST})")
    ap.add_argument("--layers", type=pathlib.Path, default=None,
                    help=f"layer declaration (default {DEFAULT_LAYERS})")
    ap.add_argument("--scan", nargs="*", default=None, metavar="DIR",
                    help="protocol directories to scan, relative to --root "
                         f"(default: {' '.join(DEFAULT_SCAN_DIRS)})")
    ap.add_argument("--only", default="", metavar="RULE[,RULE...]",
                    help="run only the named rules (skips the manifest "
                         "drift cross-check)")
    args = ap.parse_args()
    root = args.root.resolve()
    manifest = args.manifest if args.manifest is not None \
        else root / DEFAULT_MANIFEST
    layers = args.layers if args.layers is not None \
        else root / DEFAULT_LAYERS
    only = {r for r in args.only.split(",") if r} if args.only else set()
    unknown = only - set(RULES)
    if unknown:
        print(f"unknown rule(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2
    scan = args.scan if args.scan else list(DEFAULT_SCAN_DIRS)
    return ProtocolLinter(root, manifest, layers, scan, only).run()


if __name__ == "__main__":
    sys.exit(main())
