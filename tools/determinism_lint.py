#!/usr/bin/env python3
"""Nondeterminism linter for the SCMP protocol stack.

The repo's core guarantee — DCDM trees, BRANCH/PRUNE traffic and golden
traces are bit-identical regardless of thread count or run — depends on no
protocol decision, packet emission or trace/exporter line deriving from an
unordered source. TSan and the golden traces only catch the interleavings
and seeds we happen to run; this linter statically rejects the constructs
that make runs diverge in the first place.

Scanned directories (src/core, src/graph, src/sim, src/protocols,
src/verify) are checked for five rule classes:

  unordered-iteration  iteration (range-for or .begin()/.cbegin()) over a
                       std::unordered_map / std::unordered_set. Hash-table
                       order is salted and load-factor dependent; anything
                       it feeds — candidate scans, packet emission, trace
                       output — varies run to run. Use std::map/std::set,
                       or copy into a sorted vector before iterating.
  pointer-key          containers keyed or ordered by object pointers
                       (std::map<T*, ...>, std::set<T*>, std::less<T*>,
                       or their unordered variants). Pointer values depend
                       on the allocator; iteration and tie-breaks over them
                       are address-space-layout lottery. Key by a stable id.
  wall-clock           rand()/srand()/std::random_device (unseeded entropy)
                       and time()/clock()/system_clock/steady_clock/
                       high_resolution_clock (wall time) outside util/rng.
                       Deterministic paths draw randomness from the seeded
                       util/rng xoshiro generator and time from sim::SimTime.
  thread-count         std::thread::hardware_concurrency(): the detected
                       core count differs across runners, so any value
                       derived from it must be proven not to reach protocol
                       results (and the derivation suppressed with a reason).
  float-equality       == / != where either operand is a floating-point
                       literal or an identifier declared float/double (or a
                       float alias such as SimTime). Exact float comparison
                       as a tie-break is only deterministic while every
                       platform computes bit-identical intermediates; each
                       deliberate use must justify why that holds here.

Suppressions: a true-but-reviewed finding is silenced with a
``// determinism: allow(<reason>)`` annotation — trailing on the flagged
line, or in the comment block immediately above it (the reason may wrap
across comment lines; it ends at the balanced closing parenthesis). Every
suppression must also appear in tools/determinism_manifest.json with the
same (file, rule, reason); drift in either direction — an annotation
missing from the manifest, a manifest entry no live annotation backs, or an
annotation that no longer suppresses anything — is itself a finding, so
suppressions cannot rot silently. tools/lint.py's determinism-hygiene rule
re-checks the annotation<->manifest correspondence tree-wide.

Usage: tools/determinism_lint.py [--root ROOT] [--manifest FILE]
                                 [--scan DIR ...]
Exits non-zero when any finding is reported.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from lint import strip_comments_and_strings  # noqa: E402

DEFAULT_SCAN_DIRS = ("src/core", "src/graph", "src/sim", "src/topo",
                     "src/protocols", "src/verify")
DEFAULT_MANIFEST = "tools/determinism_manifest.json"

RULES = ("unordered-iteration", "pointer-key", "wall-clock", "thread-count",
         "float-equality")

ALLOW_TOKEN = "determinism: allow("

UNORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set)\s*<")
FLOAT_ALIAS_RE = re.compile(
    r"\b(?:using\s+(\w+)\s*=\s*(?:double|float)\s*;"
    r"|typedef\s+(?:double|float)\s+(\w+)\s*;)")
POINTER_KEY_RE = re.compile(
    r"\bstd\s*::\s*(?:unordered_)?(?:map|set)\s*<\s*(?:const\s+)?"
    r"[\w:]+\s*(?:const\s*)?\*"
    r"|\bstd\s*::\s*less\s*<\s*[^>]*\*\s*>")
WALL_CLOCK_RE = re.compile(
    r"\brand\s*\(|\bsrand\s*\(|\brandom_device\b|\btime\s*\(|\bclock\s*\("
    r"|\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b")
THREAD_COUNT_RE = re.compile(r"\bhardware_concurrency\b")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;{)]*:\s*([^){]+)\)")
CMP_RE = re.compile(
    r"([A-Za-z_]\w*|\d+\.\d*(?:[eE][-+]?\d+)?[fF]?|\.\d+)"
    r"\s*(==|!=)\s*"
    r"([A-Za-z_]\w*|\d+\.\d*(?:[eE][-+]?\d+)?[fF]?|\.\d+)")
FLOAT_LITERAL_RE = re.compile(r"^(?:\d+\.\d*(?:[eE][-+]?\d+)?[fF]?|\.\d+)$")


def collapse_ws(text: str) -> str:
    return " ".join(text.split())


def template_argument_end(code: str, start: int) -> int:
    """Index just past the ``>`` matching the ``<`` at ``start``."""
    depth = 0
    for i in range(start, len(code)):
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


class Annotation:
    """One ``determinism: allow(<reason>)`` occurrence in a raw source."""

    def __init__(self, line: int, end_line: int, reason: str):
        self.line = line          # line the token starts on (1-based)
        self.end_line = end_line  # line the balanced ')' closes on
        self.reason = collapse_ws(reason)
        self.used_by: list[str] = []  # rules it suppressed


def collect_annotations(raw: str) -> list[Annotation]:
    out = []
    pos = 0
    while True:
        start = raw.find(ALLOW_TOKEN, pos)
        if start < 0:
            return out
        open_paren = start + len(ALLOW_TOKEN) - 1
        depth, i = 0, open_paren
        while i < len(raw):
            if raw[i] == "(":
                depth += 1
            elif raw[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        reason_raw = raw[open_paren + 1:i]
        # Strip comment-continuation markers from wrapped reasons.
        reason = re.sub(r"\n\s*//+", " ", reason_raw)
        out.append(Annotation(raw.count("\n", 0, start) + 1,
                              raw.count("\n", 0, i) + 1, reason))
        pos = i + 1


class SourceFile:
    def __init__(self, root: pathlib.Path, path: pathlib.Path):
        self.path = path
        self.rel = str(path.relative_to(root))
        self.raw = path.read_text(encoding="utf-8")
        self.raw_lines = self.raw.splitlines()
        self.code = strip_comments_and_strings(self.raw)
        self.code_lines = self.code.splitlines()
        self.annotations = collect_annotations(self.raw)

    def annotation_for(self, lineno: int) -> Annotation | None:
        """The annotation covering ``lineno``: trailing on the line itself,
        or closing on the immediately preceding line (a comment block just
        above the flagged statement)."""
        for a in self.annotations:
            if a.line <= lineno <= a.end_line or a.end_line == lineno - 1:
                return a
        return None


# Keywords and qualifiers that look like a type token in `Type name`
# declaration scans but never are one.
NOT_A_TYPE = {
    "return", "case", "new", "delete", "else", "const", "constexpr",
    "static", "inline", "using", "typedef", "namespace", "struct", "class",
    "enum", "public", "private", "protected", "if", "while", "for", "do",
    "break", "continue", "goto", "sizeof", "template", "typename",
    "operator", "throw", "catch", "try", "virtual", "override", "final",
    "friend", "mutable", "volatile", "explicit", "noexcept", "default",
    "switch", "this", "true", "false", "nullptr", "and", "or", "not",
}

# Builtin / idiomatic integer-ish type tokens (beyond the uppercase-start
# and `::`-qualified heuristics below).
INTEGRAL_TYPES = {
    "int", "unsigned", "long", "short", "bool", "char", "signed", "auto",
    "size_t", "ssize_t", "ptrdiff_t", "uint8_t", "uint16_t", "uint32_t",
    "uint64_t", "int8_t", "int16_t", "int32_t", "int64_t",
}

DECL_RE = re.compile(r"\b([A-Za-z_][\w:]*)\s*(\*+|&+)?\s+([A-Za-z_]\w*)")
# Qualifiers that can precede the type token in a declaration; stripped
# before the DECL_RE scan so `const double x` still matches `double x`.
QUALIFIER_RE = re.compile(
    r"\b(?:const|constexpr|static|inline|mutable|volatile|extern|thread_local)\b")


class DeterminismLinter:
    def __init__(self, root: pathlib.Path, manifest_path: pathlib.Path,
                 scan_dirs: list[str]):
        self.root = root
        self.manifest_path = manifest_path
        self.scan_dirs = scan_dirs
        self.findings: list[str] = []
        self.files: list[SourceFile] = []
        self.float_aliases: set[str] = set()
        self.unordered_names: set[str] = set()
        # rel -> identifiers that are unambiguously floating-point in that
        # file's scope (its own declarations plus its paired header/source).
        self.float_names: dict[str, set[str]] = {}
        # (rel, rule, reason) triples actually used to suppress a finding.
        self.used_suppressions: set[tuple[str, str, str]] = set()

    def report(self, rel: str, line: int, rule: str, msg: str):
        self.findings.append(f"{rel}:{line}: {rule}: {msg}")

    # ---- collection ------------------------------------------------------

    def load(self):
        for d in self.scan_dirs:
            base = self.root / d
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in (".cpp", ".hpp"):
                    self.files.append(SourceFile(self.root, path))
        self._collect_float_names()
        self._collect_unordered_names()

    def _scan_declarations(self, code: str) -> tuple[set[str], set[str]]:
        """(float_names, other_names) declared in ``code``. A pointer or
        reference declaration is never float (comparing the handle, not the
        value); a type token that is a known integral, an UpperCamel or
        ``::``-qualified type, or a ``*_t`` counts as non-float."""
        floats: set[str] = set()
        others: set[str] = set()
        code = QUALIFIER_RE.sub(" ", code)
        for m in DECL_RE.finditer(code):
            type_tok, ptr, name = m.group(1), m.group(2), m.group(3)
            if type_tok in NOT_A_TYPE or name in NOT_A_TYPE:
                continue
            if type_tok in self.float_aliases:
                (others if ptr else floats).add(name)
            elif (type_tok in INTEGRAL_TYPES or "::" in type_tok or
                  type_tok[0].isupper() or type_tok.endswith("_t") or ptr):
                others.add(name)
        return floats, others

    def _collect_float_names(self):
        """Per-file sets of identifiers that are unambiguously floating
        point. Scope of a file's declarations = the file plus its paired
        header/source (``dcdm.cpp`` sees ``double delay_slack`` from
        ``dcdm.hpp``). A name also declared with a non-float type in that
        scope is ambiguous and dropped — short names like ``at`` or ``w``
        are reused across types, and a false positive here would train
        people to write unreviewed suppressions."""
        self.float_aliases = {"double", "float"}
        for f in self.files:
            for m in FLOAT_ALIAS_RE.finditer(f.code):
                self.float_aliases.add(m.group(1) or m.group(2))
        per_file: dict[str, tuple[set[str], set[str]]] = {
            f.rel: self._scan_declarations(f.code) for f in self.files
        }
        pair = {".cpp": ".hpp", ".hpp": ".cpp"}
        for f in self.files:
            floats, others = map(set, per_file[f.rel])
            sibling = str(pathlib.PurePosixPath(f.rel).with_suffix(
                pair[pathlib.PurePosixPath(f.rel).suffix]))
            if sibling in per_file:
                floats |= per_file[sibling][0]
                others |= per_file[sibling][1]
            self.float_names[f.rel] = floats - others

    def _collect_unordered_names(self):
        """Variable / member names declared with an unordered container
        type anywhere in the scan set."""
        for f in self.files:
            for m in UNORDERED_DECL_RE.finditer(f.code):
                end = template_argument_end(f.code, m.end() - 1)
                after = f.code[end:end + 120]
                dm = re.match(r"\s*&?\s*(\w+)", after)
                if dm and dm.group(1) not in ("const",):
                    self.unordered_names.add(dm.group(1))

    # ---- rules -----------------------------------------------------------

    def flag(self, f: SourceFile, lineno: int, rule: str, msg: str):
        ann = f.annotation_for(lineno)
        if ann is not None:
            ann.used_by.append(rule)
            self.used_suppressions.add((f.rel, rule, ann.reason))
            return
        self.report(f.rel, lineno, rule, msg)

    def check_file(self, f: SourceFile):
        for lineno, line in enumerate(f.code_lines, 1):
            self._check_unordered_iteration(f, lineno, line)
            if POINTER_KEY_RE.search(line):
                self.flag(f, lineno, "pointer-key",
                          "container keyed or ordered by a raw pointer; "
                          "addresses vary run to run — key by a stable id")
            m = WALL_CLOCK_RE.search(line)
            if m:
                self.flag(f, lineno, "wall-clock",
                          f"nondeterministic source `{m.group(0).strip()}`; "
                          "draw randomness from the seeded util/rng "
                          "generator and time from sim::SimTime")
            if THREAD_COUNT_RE.search(line):
                self.flag(f, lineno, "thread-count",
                          "hardware_concurrency() differs across machines; "
                          "prove results cannot depend on it and suppress "
                          "with a reason, or pin the count explicitly")
            self._check_float_equality(f, lineno, line)

    def _check_unordered_iteration(self, f: SourceFile, lineno: int,
                                   line: str):
        hit = None
        m = RANGE_FOR_RE.search(line)
        if m:
            words = set(re.findall(r"[A-Za-z_]\w*", m.group(1)))
            over = sorted(words & self.unordered_names)
            if over:
                hit = f"range-for over unordered container `{over[0]}`"
        if hit is None:
            for name in self.unordered_names:
                if re.search(rf"\b{re.escape(name)}\s*\.\s*c?begin\s*\(",
                             line):
                    hit = f"iterator walk over unordered container `{name}`"
                    break
        if hit is not None:
            self.flag(f, lineno, "unordered-iteration",
                      f"{hit}; hash order is salted and load-factor "
                      "dependent — iterate a sorted copy or use an ordered "
                      "container")

    def _check_float_equality(self, f: SourceFile, lineno: int, line: str):
        floats = self.float_names.get(f.rel, set())
        for m in CMP_RE.finditer(line):
            lhs, op, rhs = m.group(1), m.group(2), m.group(3)
            involved = [t for t in (lhs, rhs)
                        if FLOAT_LITERAL_RE.match(t) or t in floats]
            if not involved:
                continue
            self.flag(f, lineno, "float-equality",
                      f"floating-point `{op}` on `{lhs} {op} {rhs}`; exact "
                      "float comparison is only deterministic when both "
                      "sides are bit-identical by construction — justify "
                      "with a suppression or restructure the tie-break")
            return  # one report per line is enough

    # ---- suppression manifest cross-check --------------------------------

    def check_manifest(self):
        rel_manifest = self.manifest_path
        try:
            manifest = json.loads(
                self.manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.findings.append(
                f"{rel_manifest}:1: suppression-manifest: manifest is "
                "missing; every determinism suppression must be declared")
            return
        except json.JSONDecodeError as err:
            self.findings.append(
                f"{rel_manifest}:{getattr(err, 'lineno', 1)}: "
                f"suppression-manifest: not valid JSON: {err}")
            return

        declared: set[tuple[str, str, str]] = set()
        for entry in manifest.get("suppressions", []):
            rule = entry.get("rule", "")
            if rule not in RULES:
                self.findings.append(
                    f"{rel_manifest}:1: suppression-manifest: unknown rule "
                    f"'{rule}' (expected one of {', '.join(RULES)})")
                continue
            key = (entry.get("file", ""), rule,
                   collapse_ws(entry.get("reason", "")))
            if not key[0] or not key[2]:
                self.findings.append(
                    f"{rel_manifest}:1: suppression-manifest: entry needs "
                    "non-empty 'file', 'rule' and 'reason'")
                continue
            declared.add(key)

        for key in sorted(self.used_suppressions - declared):
            rel, rule, reason = key
            self.findings.append(
                f"{rel}:1: suppression-manifest: live suppression not in "
                f"{rel_manifest.name}: rule={rule} reason=\"{reason}\"")
        for key in sorted(declared - self.used_suppressions):
            rel, rule, reason = key
            self.findings.append(
                f"{rel_manifest}:1: suppression-manifest: stale entry — no "
                f"live `determinism: allow` in {rel} suppresses a {rule} "
                f"finding with reason \"{reason}\"")

        # An annotation that no longer silences anything is dead weight and
        # hides the next real finding placed near it.
        for f in self.files:
            for a in f.annotations:
                if not a.used_by:
                    self.findings.append(
                        f"{f.rel}:{a.line}: suppression-manifest: "
                        "`determinism: allow` annotation suppresses no "
                        "finding; delete it (and its manifest entry)")

    # ---- driver ----------------------------------------------------------

    def run(self) -> int:
        self.load()
        for f in self.files:
            self.check_file(f)
        self.check_manifest()
        for finding in self.findings:
            print(finding)
        if self.findings:
            print(f"\ntools/determinism_lint.py: {len(self.findings)} "
                  "finding(s)", file=sys.stderr)
            return 1
        print("tools/determinism_lint.py: clean")
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root",
                    default=pathlib.Path(__file__).resolve().parent.parent,
                    type=pathlib.Path, help="repository root")
    ap.add_argument("--manifest", type=pathlib.Path, default=None,
                    help=f"suppression manifest (default {DEFAULT_MANIFEST})")
    ap.add_argument("--scan", nargs="*", default=None, metavar="DIR",
                    help="directories to scan, relative to --root "
                         f"(default: {' '.join(DEFAULT_SCAN_DIRS)})")
    args = ap.parse_args()
    root = args.root.resolve()
    manifest = args.manifest if args.manifest is not None \
        else root / DEFAULT_MANIFEST
    scan = args.scan if args.scan else list(DEFAULT_SCAN_DIRS)
    return DeterminismLinter(root, manifest, scan).run()


if __name__ == "__main__":
    sys.exit(main())
