#!/usr/bin/env python3
"""Validates BENCH_*.json files against the scmp-bench-v1 schema.

Every bench binary (bench/) writes one such file per run when invoked with
``--json <dir>`` or with SCMP_BENCH_JSON_DIR set (see bench/bench_common.hpp
and docs/observability.md). CI's bench-smoke job runs this validator over the
emitted files before uploading them as artifacts, so a schema regression
fails the build rather than silently breaking downstream plotting.

Schema "scmp-bench-v1":

  {
    "schema": "scmp-bench-v1",
    "bench": "<name>",               # matches the BENCH_<name>.json filename
    "points": [
      {"series": str, "x": number,
       "count": non-negative int,
       "mean": number|null, "ci95": number|null,
       "p50": number|null, "p95": number|null, "p99": number|null,
       "min": number|null, "max": number|null},
      ...
    ]
  }

null is the JSON spelling of a non-finite statistic (e.g. min/max of an
empty distribution). Extra keys are rejected: the schema is versioned, so
additions belong in a v2.

Usage: tools/check_bench_json.py FILE_OR_DIR [...]
With a directory argument, validates every BENCH_*.json inside. Exits
non-zero on any violation (or when a directory contains no bench files).
"""

from __future__ import annotations

import json
import pathlib
import sys

NUMERIC_OR_NULL = ("mean", "ci95", "p50", "p95", "p99", "min", "max")
POINT_KEYS = {"series", "x", "count", *NUMERIC_OR_NULL}


def is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_file(path: pathlib.Path) -> list[str]:
    errors: list[str] = []

    def err(msg: str):
        errors.append(f"{path}: {msg}")

    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level must be a JSON object"]
    if set(doc) != {"schema", "bench", "points"}:
        err(f"top-level keys must be schema/bench/points, got {sorted(doc)}")
    if doc.get("schema") != "scmp-bench-v1":
        err(f"schema must be \"scmp-bench-v1\", got {doc.get('schema')!r}")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        err("bench must be a non-empty string")
    elif path.name != f"BENCH_{bench}.json":
        err(f"bench name {bench!r} disagrees with filename {path.name}")

    points = doc.get("points")
    if not isinstance(points, list):
        return errors + [f"{path}: points must be a list"]
    for i, p in enumerate(points):
        where = f"points[{i}]"
        if not isinstance(p, dict):
            err(f"{where}: must be an object")
            continue
        if set(p) != POINT_KEYS:
            err(f"{where}: keys must be {sorted(POINT_KEYS)}, got {sorted(p)}")
            continue
        if not isinstance(p["series"], str) or not p["series"]:
            err(f"{where}: series must be a non-empty string")
        if not is_number(p["x"]):
            err(f"{where}: x must be a number")
        if not isinstance(p["count"], int) or isinstance(p["count"], bool) \
                or p["count"] < 0:
            err(f"{where}: count must be a non-negative integer")
        for key in NUMERIC_OR_NULL:
            if p[key] is not None and not is_number(p[key]):
                err(f"{where}: {key} must be a number or null")
    return errors


def collect(arg: str) -> list[pathlib.Path]:
    path = pathlib.Path(arg)
    if path.is_dir():
        return sorted(path.glob("BENCH_*.json"))
    return [path]


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files: list[pathlib.Path] = []
    for arg in argv:
        found = collect(arg)
        if not found:
            print(f"{arg}: no BENCH_*.json files", file=sys.stderr)
            return 1
        files.extend(found)
    errors: list[str] = []
    for f in files:
        errors.extend(check_file(f))
    for e in errors:
        print(e)
    if errors:
        print(f"check_bench_json.py: {len(errors)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"check_bench_json.py: {len(files)} file(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
