#!/usr/bin/env python3
"""Validates bench JSON (scmp-bench-v1) and time-series JSONL
(scmp-timeseries-v1) artifacts.

Every bench binary (bench/) writes one BENCH_*.json per run when invoked with
``--json <dir>`` or with SCMP_BENCH_JSON_DIR set (see bench/bench_common.hpp
and docs/observability.md). Observability sessions (--timeseries) write
*timeseries*.jsonl streams. CI's bench-smoke job runs this validator over the
emitted files before uploading them as artifacts, so a schema regression
fails the build rather than silently breaking downstream plotting.

Schema "scmp-bench-v1":

  {
    "schema": "scmp-bench-v1",
    "bench": "<name>",               # matches the BENCH_<name>.json filename
    "points": [
      {"series": str, "x": number,
       "count": non-negative int,
       "mean": number|null, "ci95": number|null,
       "p50": number|null, "p95": number|null, "p99": number|null,
       "min": number|null, "max": number|null},
      ...
    ]
  }

Schema "scmp-timeseries-v1" (line-oriented; see src/obs/timeseries.hpp):

  {"schema": "scmp-timeseries-v1", "interval": positive number}
  {"run": int, "t": number, "counters": {name: number, ...},
   "gauges": {name: number, ...},
   "histograms": {name: {"count": int, "delta": int,
                         "p50": number, "p95": number, "p99": number}}}

with `run` non-decreasing across windows and `t` strictly increasing within
a run. null is the JSON spelling of a non-finite statistic (e.g. min/max of
an empty distribution). Extra keys are rejected: the schemas are versioned,
so additions belong in a v2.

Usage: tools/check_bench_json.py FILE_OR_DIR [...]
With a directory argument, validates every BENCH_*.json and every
*timeseries*.jsonl inside. Exits non-zero on any violation (or when a
directory contains neither kind of file).
"""

from __future__ import annotations

import json
import pathlib
import sys

NUMERIC_OR_NULL = ("mean", "ci95", "p50", "p95", "p99", "min", "max")
POINT_KEYS = {"series", "x", "count", *NUMERIC_OR_NULL}


def is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_file(path: pathlib.Path) -> list[str]:
    errors: list[str] = []

    def err(msg: str):
        errors.append(f"{path}: {msg}")

    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level must be a JSON object"]
    if set(doc) != {"schema", "bench", "points"}:
        err(f"top-level keys must be schema/bench/points, got {sorted(doc)}")
    if doc.get("schema") != "scmp-bench-v1":
        err(f"schema must be \"scmp-bench-v1\", got {doc.get('schema')!r}")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        err("bench must be a non-empty string")
    elif path.name != f"BENCH_{bench}.json":
        err(f"bench name {bench!r} disagrees with filename {path.name}")

    points = doc.get("points")
    if not isinstance(points, list):
        return errors + [f"{path}: points must be a list"]
    for i, p in enumerate(points):
        where = f"points[{i}]"
        if not isinstance(p, dict):
            err(f"{where}: must be an object")
            continue
        if set(p) != POINT_KEYS:
            err(f"{where}: keys must be {sorted(POINT_KEYS)}, got {sorted(p)}")
            continue
        if not isinstance(p["series"], str) or not p["series"]:
            err(f"{where}: series must be a non-empty string")
        if not is_number(p["x"]):
            err(f"{where}: x must be a number")
        if not isinstance(p["count"], int) or isinstance(p["count"], bool) \
                or p["count"] < 0:
            err(f"{where}: count must be a non-negative integer")
        for key in NUMERIC_OR_NULL:
            if p[key] is not None and not is_number(p[key]):
                err(f"{where}: {key} must be a number or null")
    return errors


HIST_KEYS = {"count", "delta", "p50", "p95", "p99"}
WINDOW_KEYS = {"run", "t", "counters", "gauges", "histograms"}


def is_nonneg_int(v) -> bool:
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_timeseries_file(path: pathlib.Path) -> list[str]:
    errors: list[str] = []

    def err(msg: str):
        errors.append(f"{path}: {msg}")

    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    if not lines:
        return [f"{path}: empty stream (the header line is mandatory)"]

    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"{path}: line 1: invalid JSON: {exc}"]
    if not isinstance(header, dict) or set(header) != {"schema", "interval"}:
        err("line 1: header keys must be exactly schema/interval")
    if isinstance(header, dict):
        if header.get("schema") != "scmp-timeseries-v1":
            err(f"header schema must be \"scmp-timeseries-v1\", "
                f"got {header.get('schema')!r}")
        if not is_number(header.get("interval")) or header["interval"] <= 0:
            err("header interval must be a positive number")

    prev_run = None
    prev_t = None
    for lineno, line in enumerate(lines[1:], start=2):
        where = f"line {lineno}"
        try:
            w = json.loads(line)
        except json.JSONDecodeError as exc:
            err(f"{where}: invalid JSON: {exc}")
            continue
        if not isinstance(w, dict) or set(w) != WINDOW_KEYS:
            err(f"{where}: window keys must be {sorted(WINDOW_KEYS)}")
            continue
        if not is_nonneg_int(w["run"]):
            err(f"{where}: run must be a non-negative integer")
            continue
        if not is_number(w["t"]):
            err(f"{where}: t must be a number")
            continue
        if prev_run is not None and w["run"] < prev_run:
            err(f"{where}: run went backwards ({prev_run} -> {w['run']})")
        if prev_run == w["run"] and prev_t is not None and w["t"] <= prev_t:
            err(f"{where}: t must increase strictly within a run "
                f"({prev_t} -> {w['t']})")
        prev_run, prev_t = w["run"], w["t"]
        for section in ("counters", "gauges"):
            if not isinstance(w[section], dict):
                err(f"{where}: {section} must be an object")
                continue
            for name, v in w[section].items():
                if not name or not is_number(v):
                    err(f"{where}: {section}[{name!r}] must be a number")
        if not isinstance(w["histograms"], dict):
            err(f"{where}: histograms must be an object")
            continue
        for name, h in w["histograms"].items():
            if not isinstance(h, dict) or set(h) != HIST_KEYS:
                err(f"{where}: histograms[{name!r}] keys must be "
                    f"{sorted(HIST_KEYS)}")
                continue
            if not is_nonneg_int(h["count"]) or not is_nonneg_int(h["delta"]):
                err(f"{where}: histograms[{name!r}] count/delta must be "
                    "non-negative integers")
            for q in ("p50", "p95", "p99"):
                if not is_number(h[q]):
                    err(f"{where}: histograms[{name!r}].{q} must be a number")
    return errors


def is_timeseries(path: pathlib.Path) -> bool:
    return "timeseries" in path.name and path.suffix == ".jsonl"


def collect(arg: str) -> list[pathlib.Path]:
    path = pathlib.Path(arg)
    if path.is_dir():
        return sorted(path.glob("BENCH_*.json")) + \
            sorted(path.glob("*timeseries*.jsonl"))
    return [path]


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files: list[pathlib.Path] = []
    for arg in argv:
        found = collect(arg)
        if not found:
            print(f"{arg}: no BENCH_*.json or *timeseries*.jsonl files",
                  file=sys.stderr)
            return 1
        files.extend(found)
    errors: list[str] = []
    for f in files:
        errors.extend(check_timeseries_file(f) if is_timeseries(f)
                      else check_file(f))
    for e in errors:
        print(e)
    if errors:
        print(f"check_bench_json.py: {len(errors)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"check_bench_json.py: {len(files)} file(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
